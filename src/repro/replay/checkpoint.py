"""Checkpoints and the checkpoint store (§4.6.1, Figure 4).

A checkpoint holds (1) the VM state — processor registers plus the memory
pages and disk blocks modified since the previous checkpoint, with earlier
state reachable through the parent chain; (2) the ``InputLogPtr`` (a log
cursor position); and (3) the BackRAS at checkpoint time.

Checkpoints are *incremental*: reconstructing full state at checkpoint C
overlays the chain C, parent(C), ... back to the initial machine (which is
rebuildable from the :class:`~repro.hypervisor.machine.MachineSpec`).
Recycling drops the oldest checkpoint by merging its exclusive pages into
its successor — the moral equivalent of the paper's "only recycle a page if
it is not pointed to by a later checkpoint".
"""

from __future__ import annotations

import logging
import threading
from bisect import bisect_right
from dataclasses import dataclass

from repro.cpu.ras import RasSnapshot
from repro.cpu.state import CpuState
from repro.errors import CheckpointError

logger = logging.getLogger(__name__)

#: Bytes per 64-bit word of checkpoint state.
_WORD_BYTES = 8


@dataclass
class Checkpoint:
    """One incremental checkpoint."""

    checkpoint_id: int
    icount: int
    cycles: int
    cpu_state: CpuState
    #: Pages dirtied since the previous checkpoint: index -> contents.
    pages: dict[int, tuple[int, ...]]
    #: Disk blocks dirtied since the previous checkpoint.
    disk_blocks: dict[int, tuple[int, ...]]
    #: The full BackRAS at checkpoint time (§4.6.2 seeds the AR's software
    #: RAS from this).
    backras: dict[int, RasSnapshot]
    #: Thread running at checkpoint time.
    current_tid: int
    #: InputLogPtr: position of the next log record to consume.
    log_position: int
    parent_id: int | None = None
    #: Disk controller registers (an OUT sequence may straddle the
    #: checkpoint; the replica must resume mid-programming).
    disk_regs: tuple[int, int, int] = (0, 0, 0)

    @property
    def storage_words(self) -> int:
        """Words of state exclusively held by this checkpoint."""
        page_words = sum(len(words) for words in self.pages.values())
        block_words = sum(len(words) for words in self.disk_blocks.values())
        ras_words = sum(len(snapshot) + 1 for snapshot in self.backras.values())
        return page_words + block_words + ras_words


class CheckpointStore:
    """Ordered collection of checkpoints with chain reconstruction.

    ``max_resident_bytes`` bounds the state the store keeps resident: after
    every :meth:`add` the oldest checkpoints are merged forward (the same
    evict-by-merge recycling the retention window uses) until the store
    fits the budget again, so long pipelined runs cannot grow memory
    without bound.  Merges performed for the budget are counted in
    :attr:`budget_merges` and logged.

    The store is shared between one writer (the checkpointing replayer)
    and any number of concurrently launched alarm replayers; a lock makes
    the mutating operations (append, recycle/merge) and the chain
    reconstructions atomic with respect to each other.
    """

    def __init__(self, max_resident_bytes: int | None = None):
        self._checkpoints: list[Checkpoint] = []
        self._by_id: dict[int, Checkpoint] = {}
        self._next_id = 1
        #: icounts parallel to ``_checkpoints`` — kept sorted (non-decreasing
        #: is enforced by :meth:`add`) so :meth:`latest_before` can bisect.
        self._icounts: list[int] = []
        #: Memoized full overlays keyed by checkpoint_id.  Entries share
        #: page/block tuples with their parents (copy-on-write: tuples are
        #: immutable, so "clean" pages are one object referenced by every
        #: overlay down the chain).  Invalidated wholesale on recycling,
        #: which mutates the successor's page map in place.
        self._pages_cache: dict[int, dict[int, tuple[int, ...]]] = {}
        self._blocks_cache: dict[int, dict[int, tuple[int, ...]]] = {}
        #: Words held by each memoized overlay, parallel to the caches
        #: (insertion order doubles as LRU order — hits reinsert).
        self._pages_cache_words: dict[int, int] = {}
        self._blocks_cache_words: dict[int, int] = {}
        #: Checkpoints dropped by recycling (statistics for §8.4).
        self.recycled = 0
        #: Resident-state budget; ``None`` is unbounded.
        self.max_resident_bytes = max_resident_bytes
        #: Checkpoints merged forward to stay under the budget.
        self.budget_merges = 0
        #: Memoized overlays evicted to respect ``max_resident_bytes`` on
        #: the reconstruct path (N concurrent epoch seeds each force a
        #: full overlay; without the bound those cache levels dwarf the
        #: checkpoints themselves).
        self.cache_evictions = 0
        self._lock = threading.RLock()

    def __getstate__(self):
        # The lock cannot cross a process boundary (parallel alarm replay
        # pickles the store into worker initializers); each process gets
        # its own.  The memoized overlays are rebuildable and can dwarf
        # the checkpoints themselves (each cache level holds a full page
        # map), so they stay behind too — only the checkpoints and the
        # budget/eviction bookkeeping (`max_resident_bytes`, `recycled`,
        # `budget_merges`, `_next_id`) make the trip.
        state = self.__dict__.copy()
        del state["_lock"]
        state["_pages_cache"] = {}
        state["_blocks_cache"] = {}
        state["_pages_cache_words"] = {}
        state["_blocks_cache_words"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Tolerate pickles from before the caches were excluded.
        self.__dict__.setdefault("_pages_cache", {})
        self.__dict__.setdefault("_blocks_cache", {})
        self.__dict__.setdefault("_pages_cache_words", {})
        self.__dict__.setdefault("_blocks_cache_words", {})
        self.__dict__.setdefault("cache_evictions", 0)
        self._lock = threading.RLock()

    @classmethod
    def from_checkpoints(cls, checkpoints,
                         max_resident_bytes: int | None = None,
                         ) -> "CheckpointStore":
        """Rebuild a store from persisted checkpoints (oldest first).

        Used by run-store recovery (``repro.store``): the checkpoints
        keep their original ids and parent links, and ``_next_id``
        continues past the highest id so checkpoints taken after a
        resume get the same ids the uninterrupted run would have used.
        The budget is *not* re-enforced during the rebuild — the
        originals were budget-checked when they were taken.
        """
        store = cls(max_resident_bytes=max_resident_bytes)
        for checkpoint in checkpoints:
            if store._icounts and checkpoint.icount < store._icounts[-1]:
                raise CheckpointError(
                    f"persisted checkpoint chain is not icount-ordered: "
                    f"{checkpoint.icount} follows {store._icounts[-1]}"
                )
            store._checkpoints.append(checkpoint)
            store._icounts.append(checkpoint.icount)
            store._by_id[checkpoint.checkpoint_id] = checkpoint
        if store._checkpoints:
            store._next_id = max(store._by_id) + 1
        return store

    def __len__(self) -> int:
        return len(self._checkpoints)

    def add(self, icount: int, cycles: int, cpu_state: CpuState,
            pages: dict[int, tuple[int, ...]],
            disk_blocks: dict[int, tuple[int, ...]],
            backras: dict[int, RasSnapshot],
            current_tid: int, log_position: int,
            disk_regs: tuple[int, int, int] = (0, 0, 0)) -> Checkpoint:
        """Append a new checkpoint chained to the previous one.

        ``icount`` must be non-decreasing across appends (equal is legal:
        breakpoint exits do not advance the instruction counter) — the
        bisect in :meth:`latest_before` depends on it.
        """
        with self._lock:
            if self._icounts and icount < self._icounts[-1]:
                raise CheckpointError(
                    f"checkpoint icount {icount} precedes the newest "
                    f"checkpoint at {self._icounts[-1]}; the store must "
                    f"stay icount-ordered"
                )
            parent_id = (
                self._checkpoints[-1].checkpoint_id
                if self._checkpoints else None
            )
            checkpoint = Checkpoint(
                checkpoint_id=self._next_id,
                icount=icount,
                cycles=cycles,
                cpu_state=cpu_state,
                pages=dict(pages),
                disk_blocks=dict(disk_blocks),
                backras=dict(backras),
                current_tid=current_tid,
                log_position=log_position,
                parent_id=parent_id,
                disk_regs=disk_regs,
            )
            self._next_id += 1
            self._checkpoints.append(checkpoint)
            self._icounts.append(icount)
            self._by_id[checkpoint.checkpoint_id] = checkpoint
            self._enforce_budget()
            return checkpoint

    def all(self) -> tuple[Checkpoint, ...]:
        """All retained checkpoints, oldest first."""
        return tuple(self._checkpoints)

    def latest(self) -> Checkpoint | None:
        """The most recent checkpoint."""
        return self._checkpoints[-1] if self._checkpoints else None

    def latest_before(self, icount: int) -> Checkpoint | None:
        """The newest checkpoint at or before instruction ``icount``.

        This is the checkpoint an alarm replayer starts from ("typically the
        latest" preceding the alarm).
        """
        with self._lock:
            position = bisect_right(self._icounts, icount)
            if position == 0:
                return None
            return self._checkpoints[position - 1]

    def predecessor(self, checkpoint: Checkpoint) -> Checkpoint | None:
        """The checkpoint preceding ``checkpoint`` (for AR escalation)."""
        if checkpoint.parent_id is None:
            return None
        return self._by_id.get(checkpoint.parent_id)

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------

    def _chain(self, checkpoint: Checkpoint) -> list[Checkpoint]:
        chain = []
        current: Checkpoint | None = checkpoint
        while current is not None:
            chain.append(current)
            if current.parent_id is None:
                break
            parent = self._by_id.get(current.parent_id)
            if parent is None:
                break  # ancestors recycled: their pages were merged forward
            current = parent
        return chain

    def _overlay(self, checkpoint: Checkpoint, attr: str,
                 cache: dict[int, dict[int, tuple[int, ...]]],
                 words: dict[int, int],
                 ) -> dict[int, tuple[int, ...]]:
        """Memoized overlay at ``checkpoint`` for ``attr`` (pages/blocks).

        Each cache entry is built from its parent's entry with one dict copy
        plus an update, so a chain of N checkpoints costs N builds total no
        matter how many alarm replayers launch from it.  The contents tuples
        are shared down the chain (immutable, so copy-on-write for free).

        The memo is bounded by ``max_resident_bytes``: every hit or insert
        refreshes the entry's LRU position (``words`` is insertion-ordered)
        and :meth:`_trim_caches` evicts the coldest overlays once the memo
        outgrows the budget — the just-requested entry is never evicted.
        """
        cached = cache.get(checkpoint.checkpoint_id)
        if cached is not None:
            # LRU refresh: reinsert at the back of the insertion order.
            key = checkpoint.checkpoint_id
            words[key] = words.pop(key)
            return cached
        # Walk down to the deepest ancestor that is not yet cached, then
        # build back up so every intermediate level gets memoized too.
        chain = self._chain(checkpoint)  # newest first
        overlay: dict[int, tuple[int, ...]] = {}
        start = len(chain)
        for depth, entry in enumerate(chain):
            hit = cache.get(entry.checkpoint_id)
            if hit is not None:
                overlay = hit
                start = depth
                break
        for entry in reversed(chain[:start]):
            overlay = dict(overlay)
            overlay.update(getattr(entry, attr))
            cache[entry.checkpoint_id] = overlay
            words[entry.checkpoint_id] = sum(
                len(contents) for contents in overlay.values())
        self._trim_caches(keep=checkpoint.checkpoint_id)
        return overlay

    def _trim_caches(self, keep: int):
        """Evict cold memoized overlays until the memo fits the budget.

        Caller holds the lock.  The budget is the same
        ``max_resident_bytes`` that bounds the checkpoints — the memo is
        derived state, so it must not outgrow what it is derived from.
        The entry for ``keep`` (the overlay being handed out right now)
        always survives, so reconstruction still works when a single
        overlay alone exceeds the budget.
        """
        budget = self.max_resident_bytes
        if budget is None:
            return
        for cache, words in (
            (self._pages_cache, self._pages_cache_words),
            (self._blocks_cache, self._blocks_cache_words),
        ):
            while (sum(words.values()) * _WORD_BYTES > budget
                   and len(words) > 1):
                oldest = next(iter(words))
                if oldest == keep:
                    # Rotate the protected entry to the back; the loop
                    # keeps evicting the genuinely cold ones.
                    words[oldest] = words.pop(oldest)
                    if len(words) == 1:
                        break
                    oldest = next(iter(words))
                del cache[oldest]
                del words[oldest]
                self.cache_evictions += 1

    def reconstruct_pages(self, checkpoint: Checkpoint) -> dict[int, tuple[int, ...]]:
        """Full page overlay at ``checkpoint`` (newest copy of each page)."""
        with self._lock:
            if self._by_id.get(checkpoint.checkpoint_id) is not checkpoint:
                raise CheckpointError(
                    f"checkpoint {checkpoint.checkpoint_id} is not in this "
                    f"store"
                )
            return dict(self._overlay(checkpoint, "pages",
                                      self._pages_cache,
                                      self._pages_cache_words))

    def reconstruct_blocks(self, checkpoint: Checkpoint) -> dict[int, tuple[int, ...]]:
        """Full disk-block overlay at ``checkpoint``."""
        with self._lock:
            return dict(
                self._overlay(checkpoint, "disk_blocks", self._blocks_cache,
                              self._blocks_cache_words)
            )

    # ------------------------------------------------------------------
    # recycling
    # ------------------------------------------------------------------

    def recycle_older_than(self, cycles: int, keep_at_least: int = 2):
        """Drop checkpoints older than ``cycles``, merging state forward.

        ``keep_at_least`` mirrors the paper's "+2" retention margin: the
        newest checkpoints are never recycled even if old.
        """
        with self._lock:
            while (len(self._checkpoints) > keep_at_least
                   and self._checkpoints[0].cycles < cycles):
                self._drop_oldest()

    @property
    def resident_bytes(self) -> int:
        """Bytes of checkpoint state currently resident."""
        return self.storage_words * _WORD_BYTES

    def _enforce_budget(self):
        """Merge oldest checkpoints forward until under the byte budget.

        Caller holds the lock.  The floor of two retained checkpoints
        matches the paper's "+2" margin — the budget never empties the
        store, it only flattens history.
        """
        budget = self.max_resident_bytes
        if budget is None:
            return
        merged = 0
        while self.resident_bytes > budget and len(self._checkpoints) > 2:
            self._drop_oldest()
            merged += 1
        if merged:
            self.budget_merges += merged
            logger.debug(
                "checkpoint budget: merged %d checkpoint(s) forward "
                "(%d total), %d bytes resident against a %d-byte budget",
                merged, self.budget_merges, self.resident_bytes, budget,
            )

    def _drop_oldest(self):
        if len(self._checkpoints) < 2:
            raise CheckpointError("cannot recycle the only checkpoint")
        oldest = self._checkpoints.pop(0)
        self._icounts.pop(0)
        successor = self._checkpoints[0]
        # Recycling mutates the successor's page map in place, so every
        # memoized overlay built through it is stale.
        self._pages_cache.clear()
        self._blocks_cache.clear()
        self._pages_cache_words.clear()
        self._blocks_cache_words.clear()
        # Pages/blocks unchanged between the two still describe the
        # successor's state: move them forward instead of freeing them.
        for index, words in oldest.pages.items():
            successor.pages.setdefault(index, words)
        for block, words in oldest.disk_blocks.items():
            successor.disk_blocks.setdefault(block, words)
        successor.parent_id = None
        del self._by_id[oldest.checkpoint_id]
        self.recycled += 1

    @property
    def storage_words(self) -> int:
        """Total words of checkpoint state retained (§8.4 statistics)."""
        return sum(cp.storage_words for cp in self._checkpoints)
