"""The deterministic replay engine shared by both replayers.

Consumption discipline: the log is strictly ordered, so the front record is
always the next event.  Before each CPU batch the engine checks whether the
front record is asynchronous and due at the current instruction count; if
so it applies it (landing DMA, injecting the interrupt, interpreting a
marker), otherwise it sizes the batch so the CPU stops exactly at the due
point (see the batch contract in ``docs/PERFORMANCE.md``).  Synchronous VM
exits consume the front record directly, with type and operand checks — any
disagreement raises :class:`~repro.errors.ReplayDivergenceError`, because a
diverged replay is useless for alarm analysis.

Cost model (§7.3): each asynchronous injection pays the performance-counter
skid — the replayer stops early and single-steps to the exact instruction,
one VM exit per step — which is why interrupts dominate replay overhead in
Figure 7(b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import UNBOUNDED_STEPS
from repro.cpu.exits import ExitControls, VmExit, VmExitReason
from repro.errors import HypervisorError, ReplayDivergenceError
from repro.hypervisor.emulation import emulate_pio_out
from repro.hypervisor.interpose import ContextSwitchInterposer
from repro.hypervisor.machine import GuestMachine, MachineSpec
from repro.obs.profile import GuestProfiler
from repro.obs.telemetry import Telemetry
from repro.perf.account import Category
from repro.perf.report import RunMetrics
from repro.rnr.log import LogCursor
from repro.rnr.records import (
    AlarmRecord,
    DiskDmaRecord,
    EndRecord,
    EvictRecord,
    InterruptRecord,
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    SentinelRecord,
    is_async_record,
)


@dataclass
class ReplayResult:
    """Outcome of one replay run."""

    metrics: RunMetrics
    reached_end: bool
    digest_checked: bool
    stop_reason: str


class DeterministicReplayer:
    """Replays a recorded log on a freshly rebuilt machine.

    Subclasses override the ``on_*`` hooks: the checkpointing replayer adds
    periodic checkpoints and evict/alarm bookkeeping; the alarm replayer
    adds call/ret trapping and the software RAS.
    """

    #: Telemetry actor name; subclasses override ("cr", "ar").
    TELEMETRY_ACTOR = "replay"

    def __init__(self, spec: MachineSpec, cursor: LogCursor,
                 controls: ExitControls | None = None,
                 manage_backras: bool = True,
                 verify_digest: bool = True,
                 telemetry: Telemetry | None = None):
        self.spec = spec
        self.cursor = cursor
        controls = controls if controls is not None else ExitControls()
        # The replay platform never raises its own alarms (§4.6.1).
        controls.ras_alarm_exits = False
        controls.ras_evict_exits = False
        self.machine = GuestMachine(spec, controls, with_world=False)
        self.interposer = ContextSwitchInterposer(
            kernel=spec.kernel,
            vmcs=self.machine.vmcs,
            memory=self.machine.memory,
            manage_backras=manage_backras,
        )
        if manage_backras:
            self.machine.vmcs.controls.breakpoints |= (
                self.interposer.breakpoints()
            )
        self.verify_digest = verify_digest
        self._costs = spec.config.costs
        self._reached_end = False
        self._digest_checked = False
        #: Rolling sentinel digest chain, mirrored from the recorder; the
        #: count of verified sentinels is exposed for audits.
        self._sentinel_crc = 0
        self._last_sentinel_icount = 0
        self.sentinels_verified = 0
        #: Set by subclasses to stop the run early.
        self.stop_requested = False
        self.stop_reason = ""
        #: Nil-sink fast path: ``None`` unless telemetry is enabled.
        self.telemetry = (telemetry if telemetry is not None else
                          Telemetry.for_config(spec.config,
                                               self.TELEMETRY_ACTOR))
        #: Deterministic guest profiler, mirroring the recorder's hooks:
        #: because replay retires the identical instruction stream, its
        #: samples land on the same global stride grid and capture the
        #: same PCs — the determinism tests compare the streams directly.
        self.profiler = GuestProfiler.for_config(
            spec.config, self.TELEMETRY_ACTOR, kernel=spec.kernel)

    # ------------------------------------------------------------------
    # checkpoint restore (shared by AR, auditors, profilers)
    # ------------------------------------------------------------------

    def restore_checkpoint(self, checkpoint, store):
        """Load a CR checkpoint into this replayer's fresh machine.

        Reconstructs the full page/block overlay through the checkpoint
        chain, restores processor and disk-controller state, reseats the
        interposer's BackRAS view, reloads the hardware RAS from the
        current thread's BackRAS entry, and positions the log cursor at
        the checkpoint's InputLogPtr.
        """
        machine = self.machine
        tel = self.telemetry
        token = (tel.begin("restore", "checkpoint", machine.cpu.icount,
                           checkpoint_icount=checkpoint.icount)
                 if tel is not None else None)
        machine.memory.restore_pages(store.reconstruct_pages(checkpoint))
        machine.disk.restore_blocks(store.reconstruct_blocks(checkpoint))
        machine.disk_dev.restore_regs(checkpoint.disk_regs)
        machine.cpu.restore_state(checkpoint.cpu_state)
        self.interposer.restore_from_checkpoint(
            dict(checkpoint.backras), checkpoint.current_tid,
        )
        machine.vmcs.load_ras(
            checkpoint.backras.get(checkpoint.current_tid, ())
        )
        self.cursor.position = checkpoint.log_position
        if self.profiler is not None:
            self.profiler.reseed(machine.cpu.icount)
        if tel is not None:
            tel.count("checkpoints_restored")
            tel.end(token, machine.cpu.icount)

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------

    def on_evict(self, record: EvictRecord):
        """An Evict marker was consumed (§4.5)."""

    def on_alarm(self, record: AlarmRecord):
        """An alarm marker was consumed."""

    def on_context_switch(self, old_tid: int, new_tid: int):
        """The guest switched threads (after BackRAS maintenance)."""

    def on_exit_boundary(self, exit_event: VmExit):
        """A VM exit was fully handled (checkpoint opportunity, §4.6.1)."""

    def on_call_trap(self, exit_event: VmExit):
        """A call executed under trap_call_ret (alarm replayer only)."""

    def on_ret_trap(self, exit_event: VmExit):
        """A return executed under trap_call_ret (alarm replayer only)."""

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int | None = None,
            stop_position: int | None = None) -> ReplayResult:
        """Replay until the log, the budget, or a stop request ends it.

        ``stop_position`` refines a budget stop for epoch slices: several
        asynchronous records can be logged *at* the budget icount (the
        recorder's loop top fires the sentinel check, due world events and
        interrupt injection at one instruction count), and an epoch ending
        there must consume exactly the ones its recording-side capture
        preceded.  With ``stop_position`` set, the budget only stops the
        run once the cursor has reached that log position — records due at
        the boundary icount but below the position are applied first, so
        the epoch's final state matches the recorder's state at capture.
        """
        cpu = self.machine.cpu
        tel = self.telemetry
        if tel is not None:
            actor = tel.actor
            phase_token = tel.begin("replay", "phase", cpu.icount)
            exit_counter = tel.registry.tagged(f"{actor}.vm_exits")
            batch_hist = tel.registry.histogram(f"{actor}.batch_instructions")
            start_icount = cpu.icount
            start_position = self.cursor.position
            last_icount = start_icount
        prof = self.profiler
        while not self.stop_requested:
            # Profiler sample first, before any due asynchronous record is
            # applied: the recorder sampled before interrupt injection at
            # this icount, so the captured PC is the pre-delivery one on
            # both sides (idempotent per grid point — re-entering the loop
            # top to drain queued records samples once).
            if prof is not None:
                prof.maybe_sample(cpu, self.interposer.current_tid)
            icount = cpu.icount
            budget_reached = (max_instructions is not None
                              and icount >= max_instructions)
            if budget_reached and (stop_position is None
                                   or self.cursor.position >= stop_position):
                self.stop_reason = self.stop_reason or "budget"
                break
            record = self.cursor.peek()
            if record is None:
                self.stop_reason = self.stop_reason or "log_exhausted"
                break
            # The batch may run until the budget, the next due asynchronous
            # record, or a VM exit — whichever comes first.  Synchronous
            # records are consumed by the VM exit that produces them, so
            # they do not bound the batch.
            batch = (max_instructions - icount
                     if max_instructions is not None else UNBOUNDED_STEPS)
            if is_async_record(record):
                if record.icount < icount:
                    raise ReplayDivergenceError(
                        f"ran past {type(record).__name__} due at "
                        f"{record.icount}", icount=icount,
                    )
                if record.icount == icount:
                    self.cursor.pop()
                    self._apply_async(record)
                    if self._reached_end:
                        self.stop_reason = self.stop_reason or "end"
                        break
                    continue
                if record.icount - icount < batch:
                    batch = record.icount - icount
            if budget_reached:
                # Past the budget with records still below stop_position,
                # yet the front record is not due at this very icount: the
                # slice bounds disagree with the log — a planner bug or a
                # damaged log, never a legal state.
                raise ReplayDivergenceError(
                    f"epoch slice ends at position {stop_position} but "
                    f"{type(record).__name__} at position "
                    f"{self.cursor.position} is not due at the boundary",
                    icount=icount,
                )
            if cpu.halted:
                raise ReplayDivergenceError(
                    "guest halted but the next log record is not due",
                    icount=icount,
                )
            if prof is not None:
                batch = prof.cap_batch(batch, icount)
            exit_event = cpu.run(batch)
            if tel is not None:
                now_icount = cpu.icount
                batch_hist.observe(now_icount - last_icount)
                last_icount = now_icount
                if exit_event is not None:
                    exit_counter.add(exit_event.reason.value)
                tel.maybe_beat(actor, now_icount)
            if exit_event is not None:
                self._handle_exit(exit_event)
                self.on_exit_boundary(exit_event)
        if tel is not None:
            registry = tel.registry
            registry.counter(f"{actor}.instructions").add(
                cpu.icount - start_icount)
            registry.counter(f"{actor}.records_consumed").add(
                self.cursor.position - start_position)
            registry.adopt_tagged(f"{actor}.overhead_cycles",
                                  self.machine.account.counter)
            backend_stats = cpu.backend.stats()
            if backend_stats:
                exec_stats = registry.tagged(
                    f"{actor}.exec.{cpu.backend.name}")
                for name, value in backend_stats.items():
                    exec_stats.add(name, value)
            if self.sentinels_verified:
                registry.gauge(f"{actor}.sentinels_verified").set(
                    self.sentinels_verified)
            if prof is not None:
                tel.attach_profile(prof.snapshot(backend_stats))
            tel.end(phase_token, cpu.icount,
                    stop=self.stop_reason or self.machine.stop_reason)
        return self._build_result()

    # ------------------------------------------------------------------
    # asynchronous records
    # ------------------------------------------------------------------

    def _apply_async(self, record):
        machine = self.machine
        costs = self._costs
        if isinstance(record, InterruptRecord):
            # Locating the injection point: counter skid + single-stepping.
            machine.charge(
                Category.INTERRUPT,
                costs.vmexit_cycles
                + costs.replay_counter_skid * costs.single_step_cycles,
            )
            fatal = machine.cpu.raise_interrupt(record.vector)
            if fatal is not None:
                raise ReplayDivergenceError(
                    f"interrupt injection triple-faulted: {fatal.detail}",
                    icount=machine.cpu.icount,
                )
        elif isinstance(record, DiskDmaRecord):
            # Content regenerated from the replica disk, not the log.
            words = machine.disk.read_block(record.block)
            machine.memory.write_block(record.addr, words)
            machine.charge(Category.DEVICE, costs.device_emulation_cycles)
        elif isinstance(record, NetworkDmaRecord):
            machine.memory.write_block(record.addr, record.words)
            machine.charge(
                Category.NETWORK,
                int(len(record.words) * 8 * 0.25),
            )
        elif isinstance(record, EvictRecord):
            self.on_evict(record)
        elif isinstance(record, AlarmRecord):
            self.on_alarm(record)
        elif isinstance(record, SentinelRecord):
            # Sentinel chains only audit full-prefix replays (the CR).
            # An alarm replayer starts mid-log from a checkpoint, so its
            # chain state cannot match the recorder's — it consumes the
            # record without judging it, like the End digest.
            if self.verify_digest:
                self._verify_sentinel(record)
        elif isinstance(record, EndRecord):
            self._finish(record)
        else:
            raise HypervisorError(
                f"unhandled async record {type(record).__name__}"
            )

    def _verify_sentinel(self, record: SentinelRecord):
        """Roll the digest chain forward; first mismatch is a divergence.

        The window in the raised error brackets where the replay went
        wrong: everything up to the previous sentinel verified clean, so
        the divergence happened between that icount and this record's.
        """
        machine = self.machine
        mine = machine.cpu_digest(self._sentinel_crc)
        if mine != record.digest:
            raise ReplayDivergenceError(
                "sentinel digest mismatch — replay silently diverged "
                "from the recorded execution",
                icount=machine.cpu.icount,
                expected_digest=record.digest,
                actual_digest=mine,
                window=(self._last_sentinel_icount, record.icount),
            )
        self._sentinel_crc = mine
        self._last_sentinel_icount = record.icount
        self.sentinels_verified += 1

    def _finish(self, record: EndRecord):
        self._reached_end = True
        if self.verify_digest and record.digest:
            digest = self.machine.state_digest()
            self._digest_checked = True
            if digest != record.digest:
                raise ReplayDivergenceError(
                    f"final state digest {digest:#x} != recorded "
                    f"{record.digest:#x}",
                    icount=self.machine.cpu.icount,
                )

    # ------------------------------------------------------------------
    # synchronous exits
    # ------------------------------------------------------------------

    def _handle_exit(self, exit_event: VmExit):
        machine = self.machine
        cpu = machine.cpu
        costs = self._costs
        reason = exit_event.reason
        if reason is VmExitReason.RDTSC:
            record = self.cursor.expect(RdtscRecord)
            cpu.regs[exit_event.rd] = record.value
            machine.charge(Category.RDTSC, costs.vmexit_cycles + 30)
        elif reason is VmExitReason.RDRAND:
            record = self.cursor.expect(RdrandRecord)
            cpu.regs[exit_event.rd] = record.value
            machine.charge(Category.RDTSC, costs.vmexit_cycles + 30)
        elif reason is VmExitReason.PIO_IN:
            record = self.cursor.expect(PioInRecord)
            if record.port != exit_event.port:
                raise ReplayDivergenceError(
                    f"IN from port {exit_event.port} but the log has port "
                    f"{record.port}", icount=cpu.icount,
                )
            cpu.regs[exit_event.rd] = record.value
            # Base exit cost matches the recording side (DEVICE); the small
            # extra is the injection bookkeeping, so Figure 7(b)'s deltas
            # line up category-by-category.
            machine.charge(Category.DEVICE, self._base_device_cost())
            machine.charge(Category.PIO_MMIO, 50)
        elif reason is VmExitReason.PIO_OUT:
            shutdown = emulate_pio_out(machine, exit_event)
            machine.charge(Category.DEVICE, self._base_device_cost())
            if shutdown:
                machine.stop("shutdown")
        elif reason is VmExitReason.MMIO_READ:
            record = self.cursor.expect(MmioReadRecord)
            if record.addr != exit_event.addr:
                raise ReplayDivergenceError(
                    f"MMIO read of {exit_event.addr:#x} but the log has "
                    f"{record.addr:#x}", icount=cpu.icount,
                )
            cpu.regs[exit_event.rd] = record.value
            machine.charge(Category.DEVICE, self._base_device_cost())
            machine.charge(Category.PIO_MMIO, 50)
        elif reason is VmExitReason.MMIO_WRITE:
            machine.mmio.write(exit_event.addr, exit_event.value)
            machine.charge(Category.DEVICE, self._base_device_cost())
        elif reason is VmExitReason.BREAKPOINT:
            old_tid, new_tid = self.interposer.on_breakpoint(exit_event.pc)
            machine.charge(
                Category.RAS,
                costs.vmexit_cycles + costs.ras_save_cycles
                + costs.ras_restore_cycles,
            )
            if old_tid != new_tid:
                self.on_context_switch(old_tid, new_tid)
        elif reason is VmExitReason.CALL_TRAP:
            machine.charge(Category.AR_TRAP,
                           costs.vmexit_cycles + costs.ar_handler_cycles)
            self.on_call_trap(exit_event)
        elif reason is VmExitReason.RET_TRAP:
            machine.charge(Category.AR_TRAP,
                           costs.vmexit_cycles + costs.ar_handler_cycles)
            self.on_ret_trap(exit_event)
        elif reason is VmExitReason.HLT:
            machine.stop("halt")
        elif reason is VmExitReason.TRIPLE_FAULT:
            machine.stop(f"triple_fault: {exit_event.detail}")
        elif reason is VmExitReason.DEBUG:
            machine.charge(Category.DEVICE, costs.vmexit_cycles)
        else:
            raise HypervisorError(
                f"replayer cannot handle VM exit {reason.value}"
            )

    def _base_device_cost(self) -> int:
        costs = self._costs
        return costs.vmexit_cycles + costs.device_emulation_cycles

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _build_result(self) -> ReplayResult:
        machine = self.machine
        metrics = RunMetrics(
            label=self.spec.label,
            instructions=machine.cpu.icount,
            guest_cycles=machine.cpu.icount,
            account=machine.account,
            backras_bytes=self.interposer.backras.bytes_moved,
            context_switches=self.interposer.context_switches,
        )
        return ReplayResult(
            metrics=metrics,
            reached_end=self._reached_end,
            digest_checked=self._digest_checked,
            stop_reason=self.stop_reason or machine.stop_reason,
        )
