"""Alarm-replay verdicts.

The AR resolves each alarm "either to show that it is a false positive or
to characterize the attack" (§3.1).  A third outcome, INCONCLUSIVE, arises
when the AR started from a checkpoint whose BackRAS had already lost the
relevant history (bounded hardware RAS); the framework then re-runs the AR
from an earlier checkpoint — the paper's "re-run multiple times ... or
starting at different checkpoints".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.rnr.records import AlarmRecord


class VerdictKind(enum.Enum):
    """What the alarm replayer concluded."""

    ROP_CONFIRMED = "rop_confirmed"
    FALSE_POSITIVE = "false_positive"
    INCONCLUSIVE = "inconclusive"


class BenignCause(enum.Enum):
    """Why a false positive happened (the §4.1 taxonomy, as diagnosed)."""

    #: The software RAS agreed with the actual target: a plain hardware
    #: underflow (deep nesting).
    DEEP_NESTING = "deep_nesting"
    #: The target was found deeper in the software stack: setjmp/longjmp
    #: or another imperfect nesting.
    IMPERFECT_NESTING = "imperfect_nesting"
    #: A whitelisted non-procedural return with a legal target.
    NON_PROCEDURAL = "non_procedural"
    #: A stray-looking indirect branch that actually targets a legitimate
    #: (merely less common) function (JOP analyzer).
    UNCOMMON_FUNCTION = "uncommon_function"


@dataclass(frozen=True)
class AlarmVerdict:
    """The AR's resolution of one alarm."""

    kind: VerdictKind
    alarm: AlarmRecord
    explanation: str
    #: Benign cause when kind is FALSE_POSITIVE.
    benign_cause: BenignCause | None = None
    #: Expected return target according to the software RAS (forensics).
    expected_target: int | None = None
    #: Observed (hijacked) target.
    observed_target: int | None = None
    #: Thread the alarm fired in.
    tid: int = -1
    #: Checkpoint the AR started from (None = start of log).
    from_checkpoint: int | None = None
    #: AR replay cost in cycles (for the §8.4 response window).
    analysis_cycles: int = 0

    @property
    def is_attack(self) -> bool:
        return self.kind is VerdictKind.ROP_CONFIRMED
