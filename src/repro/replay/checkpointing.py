"""The Checkpointing Replayer (CR, §4.6.1).

Always-on deterministic replay at roughly recording speed.  At VM-exit
boundaries past the checkpoint period it snapshots dirty pages, dirty disk
blocks, the processor state and the BackRAS, plus the current log cursor.

The CR also performs the paper's underflow special-casing (§4.6.2): Evict
records are stacked per thread; an underflow alarm whose missing return
address equals the thread's most recent evicted entry is dismissed as a
false positive without ever launching an alarm replayer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.exits import VmExit
from repro.cpu.exits import RopAlarmKind
from repro.hypervisor.machine import MachineSpec
from repro.obs.telemetry import Telemetry, TelemetrySnapshot
from repro.perf.account import Category
from repro.replay.base import DeterministicReplayer, ReplayResult
from repro.replay.checkpoint import Checkpoint, CheckpointStore
from repro.rnr.log import InputLog, LogCursor
from repro.rnr.records import AlarmRecord, EvictRecord


@dataclass(frozen=True)
class CheckpointingOptions:
    """CR configuration."""

    #: Checkpoint period in guest seconds; ``None`` replays without
    #: checkpointing (the RepNoChk setup).
    period_s: float | None = 1.0
    #: Retention window in guest seconds.  ``None`` keeps everything
    #: ("checkpoints can be stored indefinitely ... for forensics").
    retention_s: float | None = None
    #: Checkpoints never recycled regardless of age (the paper's "+2").
    keep_at_least: int = 2
    #: Verify the end-of-log state digest.
    verify_digest: bool = True
    #: Resident-state budget for the checkpoint store, in bytes; the store
    #: merges its oldest checkpoints forward to stay under it (``None`` is
    #: unbounded).  Long streaming runs set this so memory stays flat.
    max_resident_bytes: int | None = None


@dataclass
class CrResumeState:
    """A CR's recovery anchor: its store plus bookkeeping at the anchor.

    Captured when a streaming CR dies on a torn frame (transport
    corruption): the checkpoints up to the failure are intact, so a fresh
    CR can resume from the newest one over the authoritative log instead
    of replaying from scratch.  ``checkpoint_icount`` is ``None`` when the
    CR died before its first checkpoint (resume degenerates to a
    from-the-start replay).  Picklable, so a CR process can ship it back
    to the coordinating process on failure.
    """

    store: CheckpointStore
    checkpoint_icount: int | None
    bookkeeping: dict | None


@dataclass
class CheckpointingResult:
    """Everything the CR produced."""

    replay: ReplayResult
    store: CheckpointStore
    #: Alarms the CR could not dismiss; the framework hands these to ARs.
    pending_alarms: list[AlarmRecord]
    #: Underflow alarms dismissed by evict matching (§4.6.2).
    dismissed_underflows: int
    #: All alarms seen in the log.
    alarms_seen: int
    #: CR cycle and log position at each alarm (by alarm icount).
    alarm_cycles: dict[int, int] = field(default_factory=dict)
    alarm_positions: dict[int, int] = field(default_factory=dict)
    #: Divergence sentinels verified during the pass (0 when the recorder
    #: emitted none) — the audit trail that silent divergence was checked.
    sentinels_verified: int = 0
    #: CR-side telemetry (``None`` unless ``config.telemetry``); picklable,
    #: so a process-backend CR ships it back inside this result.
    telemetry: TelemetrySnapshot | None = None


class CheckpointingReplayer(DeterministicReplayer):
    """Deterministic replay with periodic incremental checkpoints."""

    TELEMETRY_ACTOR = "cr"

    def __init__(self, spec: MachineSpec, log: InputLog,
                 options: CheckpointingOptions | None = None,
                 cursor: LogCursor | None = None,
                 pending_alarm_listener=None,
                 telemetry: Telemetry | None = None,
                 checkpoint_listener=None):
        """``pending_alarm_listener`` is called (from the CR's thread) with
        each alarm the CR cannot dismiss, the moment it is confirmed — the
        streaming pipeline uses it to dispatch alarm replayers while the
        CR is still consuming the log, instead of after the full pass.

        ``checkpoint_listener`` is called (also on the CR's thread) with
        ``(checkpoint, bookkeeping)`` right after each checkpoint is
        taken — the durable run store (``repro.store``) persists the
        incremental checkpoint file from it, so a crashed CR can resume
        from its last durable checkpoint."""
        self.options = options if options is not None else CheckpointingOptions()
        super().__init__(
            spec,
            cursor if cursor is not None else log.cursor(),
            manage_backras=True,
            verify_digest=self.options.verify_digest,
            telemetry=telemetry,
        )
        self.log = log
        self.store = CheckpointStore(
            max_resident_bytes=self.options.max_resident_bytes,
        )
        self.pending_alarm_listener = pending_alarm_listener
        self.checkpoint_listener = checkpoint_listener
        self.pending_alarms: list[AlarmRecord] = []
        self.dismissed_underflows = 0
        self.alarms_seen = 0
        #: CR-side consumption timestamps and log positions per alarm
        #: (keyed by alarm icount) — §8.4's response-window inputs.
        self.alarm_cycles: dict[int, int] = {}
        self.alarm_positions: dict[int, int] = {}
        self._evict_stacks: dict[int, list[EvictRecord]] = {}
        #: Per-checkpoint bookkeeping snapshots (keyed by checkpoint
        #: icount) so a torn-stream recovery can resume mid-log without
        #: double-counting alarms or evicts consumed before the anchor.
        self._resume_snapshots: dict[int, dict] = {}
        self._period_cycles = (
            spec.config.cycles(self.options.period_s)
            if self.options.period_s is not None else None
        )
        self._retention_cycles = (
            spec.config.cycles(self.options.retention_s)
            if self.options.retention_s is not None else None
        )
        self._last_checkpoint_cycles = 0

    # ------------------------------------------------------------------
    # replay hooks
    # ------------------------------------------------------------------

    def on_exit_boundary(self, exit_event: VmExit):
        """Checkpoint when the period has elapsed and we are at an exit.

        The paper takes checkpoints at VM-exit boundaries: the guest is
        quiescent and the hardware has well-defined state to dump.
        """
        if self._period_cycles is None:
            return
        if self.machine.cpu._skip_breakpoint_at is not None:
            # A breakpoint exit was just handled and its one-shot skip is
            # still armed.  ``CpuState`` cannot carry the arm, so a
            # checkpoint taken here would re-fire the handler on restore;
            # defer to the next exit boundary (the arm clears as soon as
            # the instruction under the breakpoint retires).  This is the
            # same deferral rule the recorder applies to epoch-boundary
            # captures (``repro.replay.epoch``).
            return
        now = self.machine.now
        if now - self._last_checkpoint_cycles >= self._period_cycles:
            self.take_checkpoint()

    def on_evict(self, record: EvictRecord):
        self._evict_stacks.setdefault(record.tid, []).append(record)

    def on_alarm(self, record: AlarmRecord):
        self.alarms_seen += 1
        self.alarm_cycles[record.icount] = self.machine.now
        self.alarm_positions[record.icount] = self.cursor.position
        tel = self.telemetry
        if tel is not None:
            tel.count_tagged("alarms", "seen")
        if record.kind is RopAlarmKind.UNDERFLOW:
            stack = self._evict_stacks.get(record.tid, [])
            if stack and stack[-1].value == record.actual:
                # The "missing" prediction is exactly the entry the RAS
                # evicted earlier in this thread: benign deep nesting.
                stack.pop()
                self.dismissed_underflows += 1
                if tel is not None:
                    tel.count_tagged("alarms", "dismissed_by_cr")
                    tel.instant("dismiss_underflow", "alarm",
                                self.machine.cpu.icount,
                                alarm_icount=record.icount)
                return
        self.pending_alarms.append(record)
        if tel is not None:
            tel.count_tagged("alarms", "pending")
        if self.pending_alarm_listener is not None:
            self.pending_alarm_listener(record)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def take_checkpoint(self) -> Checkpoint:
        """Snapshot the VM now (§4.6.1's three components)."""
        machine = self.machine
        costs = self._costs
        tel = self.telemetry
        token = (tel.begin("take_checkpoint", "checkpoint",
                           machine.cpu.icount)
                 if tel is not None else None)
        # Hardware dumps the RAS into the current thread's BackRAS entry so
        # the checkpointed BackRAS is complete.
        tid = self.interposer.current_tid
        if tid >= 0:
            self.interposer.backras.save(tid, machine.vmcs.dump_ras())
        dirty_pages = machine.memory.dirty_pages()
        dirty_blocks = machine.disk.dirty_blocks()
        checkpoint = self.store.add(
            icount=machine.cpu.icount,
            cycles=machine.now,
            cpu_state=machine.cpu.capture_state(),
            pages=machine.memory.snapshot_pages(dirty_pages),
            disk_blocks=machine.disk.snapshot_blocks(dirty_blocks),
            backras=self.interposer.backras.snapshot(),
            current_tid=tid,
            log_position=self.cursor.position,
            disk_regs=machine.disk_dev.capture_regs(),
        )
        machine.memory.clear_dirty()
        machine.disk.clear_dirty()
        machine.charge(
            Category.CHECKPOINT,
            costs.checkpoint_base_cycles
            + len(dirty_pages)
            * (costs.checkpoint_page_cycles + costs.page_copy_cycles),
        )
        self._last_checkpoint_cycles = machine.now
        self._resume_snapshots[checkpoint.icount] = self._bookkeeping()
        if self.checkpoint_listener is not None:
            self.checkpoint_listener(
                checkpoint, self._resume_snapshots[checkpoint.icount],
            )
        if self._retention_cycles is not None:
            self.store.recycle_older_than(
                machine.now - self._retention_cycles,
                keep_at_least=self.options.keep_at_least,
            )
        if tel is not None:
            registry = tel.registry
            registry.counter("checkpoints_taken").add(1)
            registry.histogram("checkpoint.dirty_pages").observe(
                len(dirty_pages))
            registry.gauge("checkpoint.resident_bytes").set(
                self.store.resident_bytes)
            tel.end(token, machine.cpu.icount, dirty_pages=len(dirty_pages))
        return checkpoint

    # ------------------------------------------------------------------
    # torn-stream recovery
    # ------------------------------------------------------------------

    def _bookkeeping(self) -> dict:
        """Shallow snapshot of the CR's consumption bookkeeping (cheap:
        a few ints plus copies of small per-alarm collections)."""
        return {
            "pending_alarms": list(self.pending_alarms),
            "dismissed_underflows": self.dismissed_underflows,
            "alarms_seen": self.alarms_seen,
            "alarm_cycles": dict(self.alarm_cycles),
            "alarm_positions": dict(self.alarm_positions),
            "evict_stacks": {tid: list(stack)
                             for tid, stack in self._evict_stacks.items()},
            "last_checkpoint_cycles": self._last_checkpoint_cycles,
            "sentinel_crc": self._sentinel_crc,
            "last_sentinel_icount": self._last_sentinel_icount,
            "sentinels_verified": self.sentinels_verified,
        }

    def capture_resume_state(self) -> CrResumeState:
        """Bundle the last good checkpoint and its bookkeeping for resume."""
        latest = self.store.latest()
        if latest is None:
            return CrResumeState(store=self.store, checkpoint_icount=None,
                                 bookkeeping=None)
        return CrResumeState(
            store=self.store,
            checkpoint_icount=latest.icount,
            bookkeeping=self._resume_snapshots.get(latest.icount),
        )

    @classmethod
    def resume(cls, spec: MachineSpec, log: InputLog,
               options: CheckpointingOptions | None,
               state: CrResumeState,
               pending_alarm_listener=None,
               telemetry: Telemetry | None = None,
               cursor: LogCursor | None = None,
               checkpoint_listener=None) -> "CheckpointingReplayer":
        """Rebuild a CR positioned at ``state``'s last good checkpoint.

        The returned replayer adopts the partial store and continues over
        the authoritative ``log`` from the checkpoint's ``InputLogPtr``;
        running it to the end yields results bit-identical to a CR that
        never failed (same checkpoints, same pending alarms, same final
        state) — only the host-side metrics cover just the replayed tail.

        ``cursor`` lets a streaming caller hand in a
        :class:`~repro.rnr.log.FrameQueueCursor` so the resumed CR can
        consume a live frame stream: restoring the checkpoint seats the
        cursor at the checkpoint's ``InputLogPtr``, and the cursor pulls
        frames until the log grows past it — the pre-anchor records flow
        through without being re-executed.
        """
        replayer = cls(spec, log, options,
                       cursor=cursor,
                       pending_alarm_listener=pending_alarm_listener,
                       telemetry=telemetry,
                       checkpoint_listener=checkpoint_listener)
        checkpoint = None
        if state.checkpoint_icount is not None:
            for candidate in state.store.all():
                if candidate.icount == state.checkpoint_icount:
                    checkpoint = candidate
                    break
        if checkpoint is None:
            # Died before the first checkpoint: a fresh from-the-start
            # replay is the resume.
            return replayer
        replayer.store = state.store
        replayer._resume_snapshots[checkpoint.icount] = (
            dict(state.bookkeeping) if state.bookkeeping else {}
        )
        replayer.restore_checkpoint(checkpoint, state.store)
        machine = replayer.machine
        bookkeeping = state.bookkeeping or {}
        # The checkpoint pins the simulated clock — but ``cycles`` was
        # sampled *before* take_checkpoint charged the checkpoint's own
        # cost, while the original CR carried that charge forward.  The
        # post-charge clock survives as ``last_checkpoint_cycles``;
        # re-seat the machine's overhead from it (falling back to the
        # pre-charge value for anchors with no bookkeeping) and clear the
        # dirty sets exactly as the original take_checkpoint did — then
        # post-resume checkpoints land on the original schedule.
        resumed_cycles = bookkeeping.get("last_checkpoint_cycles",
                                         checkpoint.cycles)
        machine.overhead_cycles = resumed_cycles - checkpoint.icount
        machine.memory.clear_dirty()
        machine.disk.clear_dirty()
        replayer.pending_alarms = list(bookkeeping.get("pending_alarms", ()))
        replayer.dismissed_underflows = bookkeeping.get(
            "dismissed_underflows", 0)
        replayer.alarms_seen = bookkeeping.get("alarms_seen", 0)
        replayer.alarm_cycles = dict(bookkeeping.get("alarm_cycles", {}))
        replayer.alarm_positions = dict(
            bookkeeping.get("alarm_positions", {}))
        replayer._evict_stacks = {
            tid: list(stack)
            for tid, stack in bookkeeping.get("evict_stacks", {}).items()
        }
        replayer._last_checkpoint_cycles = bookkeeping.get(
            "last_checkpoint_cycles", checkpoint.cycles)
        replayer._sentinel_crc = bookkeeping.get("sentinel_crc", 0)
        replayer._last_sentinel_icount = bookkeeping.get(
            "last_sentinel_icount", 0)
        replayer.sentinels_verified = bookkeeping.get(
            "sentinels_verified", 0)
        return replayer

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def sample_telemetry(self) -> TelemetrySnapshot | None:
        """End-of-pass snapshot with store ground truth folded in.

        Idempotent (store stats land in gauges, which re-set): the
        pipeline re-samples after the last AR verdict arrives so the
        dispatch→verdict spans closed by AR completions are included.
        """
        tel = self.telemetry
        if tel is None:
            return None
        registry = tel.registry
        store = self.store
        registry.gauge("checkpoint.resident_bytes").set(store.resident_bytes)
        registry.gauge("checkpoint.storage_words").set(store.storage_words)
        registry.gauge("checkpoint.recycled").set(store.recycled)
        registry.gauge("checkpoint.budget_merges").set(store.budget_merges)
        return tel.snapshot()

    def run_to_end(self, max_instructions: int | None = None,
                   stop_position: int | None = None,
                   ) -> CheckpointingResult:
        """Replay the whole log, returning the CR-specific result."""
        replay = self.run(max_instructions=max_instructions,
                          stop_position=stop_position)
        return CheckpointingResult(
            replay=replay,
            store=self.store,
            pending_alarms=list(self.pending_alarms),
            dismissed_underflows=self.dismissed_underflows,
            alarms_seen=self.alarms_seen,
            alarm_cycles=dict(self.alarm_cycles),
            alarm_positions=dict(self.alarm_positions),
            sentinels_verified=self.sentinels_verified,
            telemetry=self.sample_telemetry(),
        )
