"""Global simulation configuration.

A single :class:`SimulationConfig` instance parameterizes every layer of the
stack: the RAS geometry of the simulated processor, the paging geometry of
physical memory, the cycle-cost model used for performance accounting, and
the simulated-time scale that maps cycles to "guest seconds".

The cost constants follow the paper's own unit costs:

* a hypervisor transition (VM exit + entry) takes about 1,000 cycles (§7.3);
* dumping or restoring the RAS microcode adds about 200 cycles each (§4.3);
* asynchronous-interrupt injection during replay single-steps the processor,
  paying a VM exit per step (§7.3).

Real time in the paper is wall-clock on a 3.1 GHz Xeon.  The simulation
instead defines ``cycles_per_second``: the number of simulated cycles that
constitute one guest second.  Checkpoint periods, event rates, and log-rate
figures are all expressed against this scale, so the system is internally
consistent while remaining fast enough to run millions of instructions in
pure Python.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged by the performance model.

    These are architectural unit costs, not measured quantities; measured
    overheads in the benchmarks emerge from event *counts* multiplied by
    these unit costs.
    """

    #: Cycles for one guest->hypervisor->guest round trip (paper: ~1,000).
    vmexit_cycles: int = 1000
    #: Extra cycles of microcode to dump the RAS to the BackRAS (paper: ~200).
    ras_save_cycles: int = 200
    #: Extra cycles of microcode to load a BackRAS entry into the RAS.
    ras_restore_cycles: int = 200
    #: Cycles to append one byte to the input log (copy out of the guest,
    #: serialize, and stage for DMA to the replay machine).
    log_write_cycles_per_byte: float = 1.5
    #: Cycles to copy one page when a copy-on-write fault fires.
    page_copy_cycles: int = 600
    #: Cycles of bookkeeping to open a checkpoint (dump processor state,
    #: walk the dirty set, mark pages copy-on-write).
    checkpoint_base_cycles: int = 20_000
    #: Per-dirty-page cycles added to ``checkpoint_base_cycles``.
    checkpoint_page_cycles: int = 150
    #: Single-step cycles paid per instruction while homing in on an
    #: asynchronous injection point during replay (one VM exit per step).
    single_step_cycles: int = 1000
    #: Modeled skid of the replay performance counter: the replayer stops
    #: this many instructions before the injection point and single-steps
    #: the rest (paper §7.3).
    replay_counter_skid: int = 11
    #: Cycles the alarm replayer's hypervisor handler spends per trapped
    #: call/return (software-RAS maintenance), on top of the VM exit.
    ar_handler_cycles: int = 800
    #: Cycles per guest instruction executed natively (base CPI).
    guest_cpi: int = 1
    #: Cycles charged to emulate one device I/O operation in the hypervisor,
    #: on top of the VM-exit cost (device emulation work).
    device_emulation_cycles: int = 400
    #: Fraction of device-emulation work avoided by paravirtual drivers.
    #: PV drivers batch requests and skip device-register emulation, so a
    #: PV setup pays fewer, cheaper exits.
    pv_exit_discount: float = 0.85


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level knobs for a simulated RnR-Safe deployment."""

    #: Return Address Stack capacity (paper simulates a 48-entry RAS).
    ras_entries: int = 48
    #: Page size in 64-bit words.
    page_size: int = 256
    #: Disk block size in 64-bit words.
    disk_block_size: int = 256
    #: Simulated cycles per guest second.  All "per second" rates and
    #: checkpoint periods use this scale.  Chosen so that a benchmark run
    #: spans a few guest seconds — enough for the paper's checkpoint-period
    #: sweep (5 s / 1 s / 0.2 s) to produce meaningfully different counts —
    #: while staying fast enough to simulate in pure Python.
    cycles_per_second: int = 250_000
    #: Capacity of the target whitelist (paper: the three context-switch
    #: completion targets).
    tar_whitelist_entries: int = 4
    #: Capacity of the hardware JOP function-boundary table (most common
    #: functions only; the replayer checks the rest).
    jop_table_entries: int = 32
    #: Default checkpoint period, in guest seconds (RepChk1).
    checkpoint_period_s: float = 1.0
    #: Seed for every nondeterministic host-world schedule.
    seed: int = 2018
    #: Default backend for parallel alarm replay: ``"thread"`` (GIL-bound
    #: pool, cheap startup) or ``"process"`` (one OS process per worker —
    #: real multi-core replay, iReplayer-style).  Either backend yields
    #: identical, input-ordered verdicts; see ``repro.core.parallel``.
    ar_backend: str = "thread"
    #: Run the recorder and the checkpointing replayer as a streaming
    #: pipeline (the paper's concurrent deployment, Figure 1) instead of
    #: sequential phases.  Results are identical either way.
    pipeline_enabled: bool = False
    #: Pipeline backend: ``"thread"`` (shared-memory frame queue, cheap
    #: startup) or ``"process"`` (the CR in its own OS process; frames
    #: cross as serialized bytes — real multi-core overlap).
    pipeline_backend: str = "thread"
    #: Records per streamed log frame (see ``repro.rnr.log``).
    frame_records: int = 512
    #: Bounded depth of the frame queue between recorder and CR; a full
    #: queue blocks the recorder — the §8.3.1 back-pressure knob.
    pipeline_queue_depth: int = 8
    #: Default number of concurrent sessions the fleet driver runs
    #: (``repro.core.fleet``).
    fleet_width: int = 4
    #: Default worker count for epoch-parallel CR replay
    #: (:func:`repro.core.parallel.replay_parallel`): the recorded session
    #: is split at checkpoint boundaries into this many roughly-equal
    #: epochs, replayed concurrently, and stitched with a per-boundary
    #: digest proof.  ``1`` (the default) keeps the CR sequential.
    cr_workers: int = 1
    #: Emit a divergence-sentinel record every N input-log records while
    #: recording (``None`` disables — the default, zero overhead).  The
    #: replayer verifies each sentinel and raises
    #: :class:`~repro.errors.ReplayDivergenceError` on mismatch, bounding
    #: any silent divergence to an N-record window.
    sentinel_records: int | None = None
    #: Extra attempts granted to a failed alarm-replayer task before the
    #: batch surfaces a :class:`~repro.errors.WorkerFailureError`.
    ar_max_retries: int = 2
    #: Per-alarm verdict deadline in host seconds (``None`` = no deadline).
    #: A task past the deadline counts as a failed attempt and is retried.
    ar_timeout_s: float | None = None
    #: Base host-seconds backoff between alarm-replayer retry attempts
    #: (doubles per attempt).
    ar_retry_backoff_s: float = 0.02
    #: Extra attempts granted to a failed fleet session before it is
    #: reported as a structured per-session failure.
    fleet_max_retries: int = 1
    #: Per-session deadline in host seconds for the fleet driver
    #: (``None`` = no deadline).  A session past the deadline is reported
    #: as a structured failure, never retried inline (a retry would stall
    #: every session behind it).
    fleet_timeout_s: float | None = None
    #: Collect runtime telemetry (``repro.obs``): metrics registries and
    #: icount-stamped spans for record / CR / checkpoints / ARs / fleet,
    #: surfaced as ``telemetry`` snapshots on run results.  Off by default;
    #: when off no telemetry object is even constructed (nil-sink fast
    #: path), so the hot loops pay a single ``is not None`` test per VM
    #: exit at most.  Enabling it never changes simulated results: the
    #: collectors read the deterministic icount but never charge cycles.
    telemetry: bool = False
    #: Deterministic guest profiler (``repro.obs.profile``): icount-strided
    #: PC sampling during record and replay, attributed to kernel/task
    #: symbols with flame-graph export.  Off by default (no profiler object
    #: is constructed).  Enabling it is bit-transparent — the sampler only
    #: caps CPU batch sizes at sample boundaries, which the batch-schedule
    #: invariance contract guarantees cannot change recorded bytes,
    #: checkpoints, verdicts, or cycle accounting.  Implies telemetry
    #: collection: the profile snapshot rides the telemetry snapshot.
    profile: bool = False
    #: Instructions between profiler PC samples.  Samples land exactly at
    #: multiples of this stride on the deterministic icount, so record and
    #: replay of the same execution produce identical sample streams.
    profile_stride: int = 2048
    #: Persist runs to an on-disk run store (``repro.store``): a CRC'd
    #: manifest, a write-ahead frame journal, and incremental checkpoint
    #: files a crashed session can resume from bit-identically.  Off by
    #: default — no store directory is created and the pipeline's emit
    #: path stays untouched (zero new I/O).  The CLI's ``--store DIR``
    #: flags imply it; embedding callers pass a
    #: :class:`~repro.store.RunStoreWriter` explicitly.
    durability: bool = False
    #: Journal fsync policy when durability is on: ``"always"`` (fsync
    #: after every frame — kill -9 loses at most the frame being
    #: written), ``"interval"`` (fsync every ``store_fsync_interval``
    #: frames — bounded loss window, near-"never" cost), or ``"never"``
    #: (leave flushing to the OS — a crash may lose the page-cache tail,
    #: recovery still resumes from the last durable prefix).
    store_fsync: str = "interval"
    #: Frames between journal fsyncs under the ``"interval"`` policy.
    store_fsync_interval: int = 8
    #: Replay-as-a-service scheduler daemon (``repro.service``): maximum
    #: jobs the durable priority queue admits in the ``queued`` state
    #: before submissions are rejected with a structured ``queue-full``
    #: reason (bounded-queue backpressure; clients may block-and-retry).
    service_queue_limit: int = 256
    #: Launches granted to a failing service job before it is moved to
    #: the poison-job quarantine (mirrors the fleet supervisor's
    #: ``max_resume_attempts``; preemptions never count).
    service_max_resume_attempts: int = 2
    #: Base host-seconds backoff between service job retry attempts
    #: (doubles per failure).
    service_retry_backoff_s: float = 0.05
    #: Scheduler poll interval in host seconds: how often the daemon
    #: drains worker results, checks worker health, and launches work.
    service_poll_s: float = 0.05
    #: Execution backend for the CPU run loop (``repro.cpu.backend``):
    #: ``"interp"`` — the reference batched interpreter — or ``"trace"``
    #: — the trace-cache translated fast path, bit-identical by contract
    #: and by the differential suite.  Because the field lives on the
    #: (pickled) config, the choice follows the workload into process-pool
    #: workers (parallel AR, process pipeline, fleet).  The
    #: ``REPRO_EXEC_BACKEND`` environment variable overrides the default,
    #: which is how CI runs the whole tier-1 suite under ``trace``.
    exec_backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXEC_BACKEND", "interp")
    )
    #: Cycle-cost model.
    costs: CostModel = field(default_factory=CostModel)

    def with_costs(self, **overrides) -> "SimulationConfig":
        """Return a copy of this config with selected cost fields replaced."""
        return replace(self, costs=replace(self.costs, **overrides))

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to guest seconds under this config."""
        return cycles / self.cycles_per_second

    def cycles(self, seconds: float) -> int:
        """Convert guest seconds to a cycle count under this config."""
        return int(seconds * self.cycles_per_second)


#: Shared default configuration (Table 2 analogue for the simulation).
DEFAULT_CONFIG = SimulationConfig()
