"""Attack construction: gadget scanning, ROP chains, exploit delivery.

Implements the Appendix A / §6 attack end-to-end against the guest kernel:
the scanner walks the victim binary for ``ret``-terminated instruction
sequences, the chain builder assembles Figure 10(d)'s payload
``[junk, G1, Addr, G2, G3]``, and the exploit module delivers it as a
network message that the vulnerable kernel parser copies into a fixed
stack buffer.  JOP and DOS variants cover Table 1's other rows.
"""

from repro.attacks.gadgets import Gadget, GadgetKind, GadgetScanner
from repro.attacks.rop_chain import RopChain, build_set_root_chain
from repro.attacks.exploit import (
    attack_payload_words,
    deliver_rop_attack,
    inject_attack_packet,
)
from repro.attacks.jop_attack import build_jop_attack_program
from repro.attacks.dos_attack import build_dos_attack_program
from repro.attacks.variants import (
    ChainVariant,
    VariantAttack,
    build_variant_chain,
    deliver_variant_attack,
)
from repro.attacks.code_injection import (
    InjectionAttack,
    build_shellcode,
    deliver_injection_attack,
)
from repro.attacks.user_rop import (
    UserRopAttack,
    deliver_user_rop_attack,
    user_rop_profile,
)

__all__ = [
    "Gadget",
    "GadgetKind",
    "GadgetScanner",
    "RopChain",
    "build_set_root_chain",
    "attack_payload_words",
    "deliver_rop_attack",
    "inject_attack_packet",
    "build_jop_attack_program",
    "build_dos_attack_program",
    "ChainVariant",
    "VariantAttack",
    "build_variant_chain",
    "deliver_variant_attack",
    "InjectionAttack",
    "build_shellcode",
    "deliver_injection_attack",
    "UserRopAttack",
    "user_rop_profile",
    "deliver_user_rop_attack",
]
