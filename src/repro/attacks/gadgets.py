"""Gadget scanner: find ``ret``-terminated code snippets in a binary image.

Works the way Figure 10(a) describes: scan the executable for ``ret``
instructions, decode the few words before each one, and classify the
resulting snippets by their architectural effect.  The scanner sees only
machine words — it needs no symbols, exactly like an attacker with a copy
of the victim kernel binary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.disassembler import format_instruction
from repro.isa.instruction import Instruction, try_decode
from repro.isa.opcodes import Opcode


class GadgetKind(enum.Enum):
    """Architectural effect of a gadget (what the chain builder needs)."""

    #: ``pop rX; ret`` — loads the next stack word into a register.
    POP_REG = "pop_reg"
    #: ``ld rD, [rS]; ret`` — dereferences a register into another.
    LOAD_INDIRECT = "load_indirect"
    #: ``calli rX; ret`` — calls through a register.
    CALL_REG = "call_reg"
    #: a bare ``ret`` — stack-lifter / chain glue.
    RET_ONLY = "ret_only"


@dataclass(frozen=True)
class Gadget:
    """One usable gadget."""

    kind: GadgetKind
    addr: int
    instructions: tuple[Instruction, ...]
    #: Register the gadget writes (POP_REG, LOAD_INDIRECT) or reads
    #: (CALL_REG).
    reg: int = -1
    #: Source register for LOAD_INDIRECT.
    src_reg: int = -1

    def disassemble(self) -> str:
        """Human-readable listing for forensics reports."""
        body = "; ".join(format_instruction(i) for i in self.instructions)
        return f"{self.addr:#x}: {body}"


class GadgetScanner:
    """Scans a ``read_word(addr)``-accessible image for gadgets."""

    def __init__(self, read_word, start: int, end: int):
        self._read_word = read_word
        self.start = start
        self.end = end

    @classmethod
    def over_image(cls, image) -> "GadgetScanner":
        """Scan an :class:`~repro.isa.assembler.AssembledImage`."""
        words = {addr: word for addr, word in image.items()}
        return cls(lambda addr: words.get(addr, 0), image.base, image.end)

    @classmethod
    def over_memory(cls, memory, start: int, end: int) -> "GadgetScanner":
        """Scan live guest memory (host reads, as VM introspection would)."""
        return cls(memory.read_word, start, end)

    def find_rets(self) -> list[int]:
        """Addresses of every ``ret`` instruction in the range."""
        rets = []
        for addr in range(self.start, self.end):
            instr = try_decode(self._read_word(addr))
            if instr is not None and instr.op is Opcode.RET:
                rets.append(addr)
        return rets

    def scan(self, window: int = 3) -> list[Gadget]:
        """All classified gadgets ending at some ``ret``.

        For each ``ret`` the scanner considers suffixes of up to ``window``
        preceding instructions; every decodable suffix whose effect is
        recognized yields a gadget (including mid-function entry points —
        the essence of code reuse).
        """
        gadgets = []
        for ret_addr in self.find_rets():
            gadgets.append(
                Gadget(
                    kind=GadgetKind.RET_ONLY,
                    addr=ret_addr,
                    instructions=(Instruction(op=Opcode.RET),),
                )
            )
            for length in range(1, window + 1):
                start = ret_addr - length
                if start < self.start:
                    break
                body = self._decode_range(start, ret_addr + 1)
                if body is None:
                    break
                gadget = self._classify(start, body)
                if gadget is not None:
                    gadgets.append(gadget)
        return gadgets

    def _decode_range(self, start: int, end: int) -> tuple[Instruction, ...] | None:
        instructions = []
        for addr in range(start, end):
            instr = try_decode(self._read_word(addr))
            if instr is None:
                return None
            instructions.append(instr)
        return tuple(instructions)

    def _classify(self, addr: int, body: tuple[Instruction, ...]) -> Gadget | None:
        if len(body) != 2:
            return None
        head, tail = body
        if tail.op is not Opcode.RET:
            return None
        if head.op is Opcode.POP:
            return Gadget(
                kind=GadgetKind.POP_REG, addr=addr, instructions=body,
                reg=head.rd,
            )
        if head.op is Opcode.LD and head.imm == 0:
            return Gadget(
                kind=GadgetKind.LOAD_INDIRECT, addr=addr, instructions=body,
                reg=head.rd, src_reg=head.rs1,
            )
        if head.op is Opcode.CALLI:
            return Gadget(
                kind=GadgetKind.CALL_REG, addr=addr, instructions=body,
                reg=head.rs1,
            )
        return None

    def find(self, kind: GadgetKind, reg: int | None = None,
             src_reg: int | None = None) -> Gadget | None:
        """First gadget matching the requested effect, or ``None``."""
        for gadget in self.scan():
            if gadget.kind is not kind:
                continue
            if reg is not None and gadget.reg != reg:
                continue
            if src_reg is not None and gadget.src_reg != src_reg:
                continue
            return gadget
        return None
