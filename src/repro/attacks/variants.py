"""Attack variants beyond Figure 10's canonical chain.

The paper leaves "collecting and analyzing multiple real-world kernel ROP
attacks" as future work (§7.1); this module builds several structurally
different chains against the same vulnerable syscall so the detection
pipeline can be exercised against more than one gadget pattern:

* ``CANONICAL`` — the paper's three-gadget chain (Figure 10);
* ``RET2FUNC``  — the ret2libc-style degenerate case: overwrite the return
  address with a whole function (``set_root``) and no gadgets at all;
* ``DOUBLE_DISPATCH`` — a longer chain that invokes two kernel functions in
  sequence by re-entering the dispatch gadgets;
* ``SPRAYED`` — the canonical chain preceded by a slide of harmless
  ``ret``-only gadgets, the ROP analogue of a NOP sled.

Every variant must (and does — see tests) cause a RAS misprediction at the
hijacked return: detection is structural, not signature-based, which is the
framework's whole point against the §2.3 signature detectors.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, replace

from repro.attacks.gadgets import GadgetKind, GadgetScanner
from repro.attacks.rop_chain import RopChain, build_set_root_chain
from repro.errors import AttackBuildError
from repro.hypervisor.machine import MachineSpec
from repro.kernel.image import KernelImage


class ChainVariant(enum.Enum):
    """Named attack shapes."""

    CANONICAL = "canonical"
    RET2FUNC = "ret2func"
    DOUBLE_DISPATCH = "double_dispatch"
    SPRAYED = "sprayed"


def build_variant_chain(kernel: KernelImage,
                        variant: ChainVariant) -> RopChain:
    """Build one of the variant chains against a kernel image."""
    if variant is ChainVariant.CANONICAL:
        return build_set_root_chain(kernel)
    if variant is ChainVariant.RET2FUNC:
        return _ret2func(kernel)
    if variant is ChainVariant.DOUBLE_DISPATCH:
        return _double_dispatch(kernel)
    if variant is ChainVariant.SPRAYED:
        return _sprayed(kernel)
    raise AttackBuildError(f"unknown variant {variant}")


def _ret2func(kernel: KernelImage) -> RopChain:
    """Jump straight into ``set_root``: no gadgets, maximal simplicity.

    The victim's hijacked return lands on a function entry; ``set_root``
    executes and its own return then pops attacker-controlled junk (a
    zero), crashing the thread — after the damage is done.
    """
    target = kernel.addr("set_root")
    scanner = GadgetScanner.over_image(kernel.image)
    ret_only = scanner.find(GadgetKind.RET_ONLY)
    if ret_only is None:
        raise AttackBuildError("no ret instruction in the kernel image")
    return RopChain(
        gadgets=(ret_only,),
        stack_words=(target,),
        description="ret2func: return directly into set_root (no gadgets)",
    )


def _double_dispatch(kernel: KernelImage) -> RopChain:
    """Invoke two ops-table functions back to back.

    After the first ``calli r2`` returns, ``kdispatch2``'s own ``ret``
    pops the next chain word, re-entering G1 — chains compose exactly as
    Appendix A describes.
    """
    base = build_set_root_chain(kernel)
    layout = kernel.layout
    first_slot = layout.ops_table_addr + layout.ops_table_entries - 1
    second_slot = layout.ops_table_addr + 1  # op_stat
    g1, _, g2, g3 = base.stack_words
    return RopChain(
        gadgets=base.gadgets,
        stack_words=(g1, first_slot, g2, g3,
                     g1, second_slot, g2, g3),
        description=(
            "double dispatch: set_root, then op_stat, by re-entering the "
            "pop/load/call gadget triple"
        ),
    )


def _sprayed(kernel: KernelImage, slide_length: int = 6) -> RopChain:
    """The canonical chain behind a ret-slide of bare ``ret`` gadgets."""
    base = build_set_root_chain(kernel)
    scanner = GadgetScanner.over_image(kernel.image)
    rets = scanner.find_rets()
    if len(rets) < 2:
        raise AttackBuildError("not enough ret gadgets for a slide")
    rng = random.Random(0x51DE)
    slide = tuple(rng.choice(rets) for _ in range(slide_length))
    return RopChain(
        gadgets=base.gadgets,
        stack_words=slide + base.stack_words,
        description=f"{slide_length}-entry ret-slide + canonical chain",
    )


@dataclass(frozen=True)
class VariantAttack:
    """A variant chain delivered into a workload's traffic."""

    variant: ChainVariant
    chain: RopChain
    spec: MachineSpec


def deliver_variant_attack(spec: MachineSpec, variant: ChainVariant,
                           at_cycle: int | None = None) -> VariantAttack:
    """Inject a variant chain the same way the canonical exploit travels."""
    from repro.attacks.exploit import attack_payload_words

    chain = build_variant_chain(spec.kernel, variant)
    payload = attack_payload_words(spec.kernel, chain=chain)
    if at_cycle is None:
        if spec.packet_schedule:
            at_cycle = spec.packet_schedule[-1][0] // 2
        else:
            at_cycle = 50_000
    schedule = list(spec.packet_schedule)
    schedule.append((at_cycle, payload))
    schedule.sort(key=lambda item: item[0])
    attacked = replace(
        spec,
        packet_schedule=tuple(schedule),
        label=f"{spec.label}+{variant.value}",
    )
    return VariantAttack(variant=variant, chain=chain, spec=attacked)
