"""JOP attack (Table 1, row 2): redirect an indirect call mid-function.

The attacker abuses the kernel's unchecked handler-installation syscall to
plant a mid-function address in the ops table, then triggers the kernel's
indirect dispatch.  The hardware JOP check (function-boundary table) sees a
target that begins no common function and raises an alarm; the replayer
then verifies against the complete function map and confirms the hijack.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import AttackBuildError
from repro.hypervisor.machine import MachineSpec
from repro.isa.assembler import Asm
from repro.kernel.layout import Syscall


def mid_function_target(spec: MachineSpec,
                        function: str = "msg_checksum") -> int:
    """An address strictly inside a kernel function (no function's entry)."""
    functions = spec.kernel.functions
    if function not in functions:
        raise AttackBuildError(f"kernel has no function {function!r}")
    start, end = functions[function]
    if end - start < 3:
        raise AttackBuildError(f"{function} is too short to target inside")
    return start + 2


def build_jop_attack_program(spec: MachineSpec,
                             target: int | None = None) -> MachineSpec:
    """Append an attacker task that plants and triggers a JOP redirect."""
    if target is None:
        target = mid_function_target(spec)
    base = _next_code_base(spec)
    slot = spec.kernel.layout.ops_table_entries - 2
    asm = Asm(base=base)
    asm.begin_function("jop_attacker")
    asm.li(1, slot)
    asm.li(2, target)
    asm.syscall(int(Syscall.SET_HANDLER))
    asm.li(1, slot)
    asm.syscall(int(Syscall.INVOKE_HANDLER))
    asm.syscall(int(Syscall.EXIT))
    asm.label("jop_spin")
    asm.jmp("jop_spin")
    asm.end_function()
    image = asm.assemble()
    return replace(
        spec,
        label=f"{spec.label}+jop",
        user_images=spec.user_images + (image,),
        init_entries=spec.init_entries + (image.addr_of("jop_attacker"),),
    )


def _next_code_base(spec: MachineSpec) -> int:
    layout = spec.kernel.layout
    if spec.user_images:
        return max(image.end for image in spec.user_images) + 16
    return layout.user_code_base
