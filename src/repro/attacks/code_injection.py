"""Classic code injection — and why it fails here (Appendix A).

The paper's Appendix A motivates ROP by recounting how W⊕X killed code
injection: "malware injected into memory can no longer be executed".  This
module mounts the *old* attack against the same vulnerable syscall — write
shellcode words into a writable buffer, then redirect the hijacked return
into that buffer — and demonstrates the two layers that stop it:

1. at load time the platform refuses to map writable+executable pages
   (``PhysicalMemory`` enforces W⊕X), so the only writable targets are
   non-executable;
2. at run time the redirected fetch faults, the kernel's recovery path
   kills the thread, and the privilege escalation never happens — which is
   exactly why the attacker of §6 switches to reusing existing code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.hypervisor.machine import MachineSpec
from repro.isa import Instruction, Opcode, encode
from repro.kernel.image import KernelImage


@dataclass(frozen=True)
class InjectionAttack:
    """A code-injection payload aimed at a writable (non-executable) page."""

    spec: MachineSpec
    #: Where the shellcode lands (inside the victim's user data page).
    shellcode_addr: int
    #: The injected instruction words.
    shellcode: tuple[int, ...]


def build_shellcode(kernel: KernelImage) -> tuple[int, ...]:
    """Machine code that would zero the UID cell if it ever executed."""
    layout = kernel.layout
    return (
        encode(Instruction(op=Opcode.LI, rd=4, imm=0)),
        encode(Instruction(op=Opcode.LI, rd=5, imm=layout.uid_addr)),
        encode(Instruction(op=Opcode.ST, rs1=5, rs2=4, imm=0)),
        encode(Instruction(op=Opcode.RET)),
    )


def deliver_injection_attack(spec: MachineSpec,
                             at_cycle: int | None = None,
                             victim_tid: int = 1) -> InjectionAttack:
    """Inject shellcode-carrying traffic targeting a data page.

    The payload both plants the shellcode (the message body the victim
    copies into its buffer *is* the shellcode) and overwrites the hijacked
    return address to point at the copy's destination — the message buffer
    in the victim's user-data region, which is mapped RW but never X.
    """
    kernel = spec.kernel
    layout = kernel.layout
    shellcode = build_shellcode(kernel)
    # The victim's recv path copies the packet to its message buffer; the
    # parser then copies it onto the kernel stack.  Aim the return at the
    # *user data* copy, the page an attacker can actually write.
    from repro.workloads.userprog import MSGBUF_OFF

    data_base, _ = layout.user_data_region(victim_tid)
    shellcode_addr = data_base + MSGBUF_OFF
    rng = random.Random(0x14B)
    buffer_words = layout.vulnerable_buffer_words
    junk = [rng.getrandbits(32) | 1 for _ in range(buffer_words)]
    # Shellcode words double as the junk prefix's head so they land at the
    # start of the message buffer.
    for index, word in enumerate(shellcode):
        junk[index] = word
    payload = tuple(junk) + (shellcode_addr, 0)
    if at_cycle is None:
        at_cycle = (spec.packet_schedule[-1][0] // 2
                    if spec.packet_schedule else 50_000)
    schedule = list(spec.packet_schedule)
    schedule.append((at_cycle, payload))
    schedule.sort(key=lambda item: item[0])
    attacked = replace(
        spec,
        packet_schedule=tuple(schedule),
        label=f"{spec.label}+inject",
    )
    return InjectionAttack(spec=attacked, shellcode_addr=shellcode_addr,
                           shellcode=shellcode)
