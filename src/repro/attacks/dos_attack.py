"""DOS attack (Table 1, row 3): starve the scheduler from inside the kernel.

Modeled on kernel-spin vulnerabilities like CVE-2015-5364: a syscall path
loops in the kernel with interrupts masked, so the context-switch counter
flatlines.  The DOS detector's watchdog notices the missing switches; the
replayer's role is to identify *which code* hogged the kernel.
"""

from __future__ import annotations

from dataclasses import replace

from repro.hypervisor.machine import MachineSpec
from repro.isa.assembler import Asm
from repro.kernel.layout import Syscall


def build_dos_attack_program(spec: MachineSpec,
                             spin_iterations: int = 20_000) -> MachineSpec:
    """Append an attacker task that hogs the kernel without yielding."""
    base = _next_code_base(spec)
    asm = Asm(base=base)
    asm.begin_function("dos_attacker")
    asm.li(1, spin_iterations)
    asm.syscall(int(Syscall.SPIN))
    asm.syscall(int(Syscall.EXIT))
    asm.label("dos_spin")
    asm.jmp("dos_spin")
    asm.end_function()
    image = asm.assemble()
    return replace(
        spec,
        label=f"{spec.label}+dos",
        user_images=spec.user_images + (image,),
        init_entries=spec.init_entries + (image.addr_of("dos_attacker"),),
    )


def _next_code_base(spec: MachineSpec) -> int:
    layout = spec.kernel.layout
    if spec.user_images:
        return max(image.end for image in spec.user_images) + 16
    return layout.user_code_base
