"""User-context ROP (§1: "RnR-Safe can secure both").

The kernel attack of §6 has a user-space twin: the victim application
parses received messages with an unchecked copy into a stack buffer, and
the attacker's message overwrites the parser's return address.  The
payload here is the ret2func shape — return straight into the
application's own ``admin`` routine, which flips the task's privilege
flag.  Detection is identical in kind: the hijacked return mispredicts,
the alarm's PC lands in user code, and the framework's auto-scoped alarm
replayer instruments user call/rets too (the paper's "increasing levels
of instrumentation").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.errors import AttackBuildError
from repro.hypervisor.machine import MachineSpec
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.userprog import ADMIN_MAGIC, FLAG_OFF, USER_PARSE_BUFFER


def user_rop_profile(base: BenchmarkProfile) -> BenchmarkProfile:
    """Derive a profile whose receivers parse messages in user space."""
    if base.recv_per_iter == 0:
        raise AttackBuildError(
            f"{base.name} receives no traffic; nothing to attack"
        )
    return replace(base, name=f"{base.name}-userparse",
                   process_msg=False, user_parser=True)


@dataclass(frozen=True)
class UserRopAttack:
    """A delivered user-context exploit."""

    spec: MachineSpec
    victim_tid: int
    #: The hijacked return's new target: the app's admin routine.
    target: int
    #: Where the proof-of-escalation flag lives.
    flag_addr: int

    def escalated(self, memory) -> bool:
        """Whether the payload flipped the victim's admin flag."""
        return memory.read_word(self.flag_addr) == ADMIN_MAGIC


def deliver_user_rop_attack(spec: MachineSpec, victim_tid: int = 1,
                            at_cycle: int | None = None) -> UserRopAttack:
    """Inject the user-parser overflow into the packet stream.

    ``spec`` must have been built from :func:`user_rop_profile` (its user
    images carry the vulnerable parser and the admin routine).
    """
    image = _victim_image(spec, victim_tid)
    symbol = f"t{victim_tid}_admin"
    if symbol not in image.symbols:
        raise AttackBuildError(
            "victim program has no user parser; build the spec from "
            "user_rop_profile() first"
        )
    target = image.addr_of(symbol)
    rng = random.Random(0x05E2)
    junk = [rng.getrandbits(32) | 1 for _ in range(USER_PARSE_BUFFER)]
    payload = tuple(junk) + (target, 0)
    if at_cycle is None:
        at_cycle = (spec.packet_schedule[-1][0] // 2
                    if spec.packet_schedule else 50_000)
    schedule = list(spec.packet_schedule)
    schedule.append((at_cycle, payload))
    schedule.sort(key=lambda item: item[0])
    attacked = replace(
        spec,
        packet_schedule=tuple(schedule),
        label=f"{spec.label}+userrop",
    )
    flag_addr = spec.kernel.layout.user_data_region(victim_tid)[0] + FLAG_OFF
    return UserRopAttack(spec=attacked, victim_tid=victim_tid,
                         target=target, flag_addr=flag_addr)


def _victim_image(spec: MachineSpec, victim_tid: int):
    index = victim_tid - 1  # boot assigns workers to slots 1..N in order
    if not 0 <= index < len(spec.user_images):
        raise AttackBuildError(f"no worker in task slot {victim_tid}")
    return spec.user_images[index]
