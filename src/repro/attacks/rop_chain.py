"""ROP chain construction (Figure 10(b)/(d)).

The canonical chain reproduces the paper's example: three gadgets that
together execute ``call [r2]`` with ``r2`` loaded from an attacker-chosen
memory address — pointed at the kernel's ops table slot holding
``set_root``, the privilege-escalation payload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.gadgets import Gadget, GadgetKind, GadgetScanner
from repro.errors import AttackBuildError
from repro.kernel.image import KernelImage


@dataclass(frozen=True)
class RopChain:
    """The stack words an exploit must place above the return slot."""

    gadgets: tuple[Gadget, ...]
    #: Words laid out from the (overwritten) return-address slot upward.
    stack_words: tuple[int, ...]
    #: What the chain achieves, for reports.
    description: str

    def disassemble(self) -> list[str]:
        """Gadget listing for forensics."""
        return [gadget.disassemble() for gadget in self.gadgets]


def build_set_root_chain(kernel: KernelImage,
                         scanner: GadgetScanner | None = None) -> RopChain:
    """Build Figure 10's three-gadget chain against the kernel image.

    ``[G1, Addr, G2, G3]`` where G1 = ``pop r1; ret``, G2 = ``ld r2, [r1];
    ret``, G3 = ``calli r2; ret`` and ``Addr`` is the ops-table slot that
    holds a pointer to ``set_root``.  All three gadgets must be *found* in
    the victim binary, not assumed.
    """
    if scanner is None:
        scanner = GadgetScanner.over_image(kernel.image)
    gadget_pop = scanner.find(GadgetKind.POP_REG, reg=1)
    if gadget_pop is None:
        raise AttackBuildError("no `pop r1; ret` gadget in the kernel image")
    gadget_load = scanner.find(GadgetKind.LOAD_INDIRECT, reg=2, src_reg=1)
    if gadget_load is None:
        raise AttackBuildError("no `ld r2, [r1]; ret` gadget in the image")
    gadget_call = scanner.find(GadgetKind.CALL_REG, reg=2)
    if gadget_call is None:
        raise AttackBuildError("no `calli r2; ret` gadget in the image")
    layout = kernel.layout
    target_slot = layout.ops_table_addr + layout.ops_table_entries - 1
    return RopChain(
        gadgets=(gadget_pop, gadget_load, gadget_call),
        stack_words=(
            gadget_pop.addr,    # overwrites the return-address slot (G1)
            target_slot,        # popped into r1 by G1 (Addr)
            gadget_load.addr,   # G2: r2 = *r1 = &set_root
            gadget_call.addr,   # G3: calli r2
        ),
        description=(
            "pop r1 <- &ops_table[last]; r2 <- *r1 (= set_root); calli r2 "
            "-- grants root by zeroing the UID cell"
        ),
    )
