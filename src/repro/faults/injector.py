"""Hook-site adapters: interpose a fault plan without touching hot paths.

The pipeline and pool code never test ``if fault_plan`` per frame or per
task — when a plan is supplied the call sites swap in these wrappers,
and when it is not they keep their original callables, so the production
path is byte-for-byte the code that ran before fault injection existed.
"""

from __future__ import annotations

import time

from repro.errors import WorkerFailureError, WorkerTimeoutError
from repro.faults.plan import FaultPlan


class FaultyFrameEmitter:
    """Wraps a frame sink, damaging frames as the plan dictates.

    Counts frames itself so the plan's frame indices always mean "the
    k-th frame the producer emitted", independent of transport.
    """

    def __init__(self, plan: FaultPlan, emit, telemetry=None):
        self._plan = plan
        self._emit = emit
        self._telemetry = telemetry
        self._next_index = 0
        #: Frames the plan swallowed (observability for tests/audits).
        self.dropped: list[int] = []

    def __call__(self, frame: bytes):
        index = self._next_index
        self._next_index += 1
        mutated = self._plan.apply_to_frame(index, frame)
        tel = self._telemetry
        if mutated is None:
            self.dropped.append(index)
            if tel is not None:
                tel.count_tagged("faults.frames", "dropped")
            return
        if tel is not None and mutated is not frame:
            tel.count_tagged("faults.frames", "corrupted")
        self._emit(mutated)


def retry_with_backoff(task, *, retries: int, backoff_s: float,
                       describe: str, retry_on: tuple = (Exception,),
                       fatal: tuple = ()):
    """Run ``task(attempt)`` with bounded retry and exponential backoff.

    Returns the first successful result.  After ``retries`` additional
    attempts fail, raises :class:`WorkerFailureError` carrying the
    attempt count and the last error — callers always see a typed
    failure, never a raw pool exception.  ``TimeoutError`` from the task
    maps to :class:`WorkerTimeoutError`.  Exceptions in ``fatal`` are
    re-raised immediately: retrying cannot help (e.g. the whole pool is
    broken) and the caller has a better recovery than we do.
    """
    last_error: BaseException | None = None
    attempts = 0
    for attempt in range(retries + 1):
        attempts = attempt + 1
        try:
            return task(attempt)
        except retry_on as exc:  # noqa: PERF203 - retry loop
            if fatal and isinstance(exc, fatal):
                raise
            last_error = exc
            if attempt < retries and backoff_s > 0:
                time.sleep(backoff_s * (2 ** attempt))
    error_cls = (WorkerTimeoutError
                 if isinstance(last_error, TimeoutError)
                 else WorkerFailureError)
    raise error_cls(
        describe, attempts=attempts,
        last_error=f"{type(last_error).__name__}: {last_error}",
    ) from last_error
