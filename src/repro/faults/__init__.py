"""Deterministic fault injection for the streaming record/replay stack.

Replay is only trustworthy if the path from recorder to verdict survives
the real world: flipped bits on the wire, torn writes, dropped queue
items, stalled transports, and dead workers.  This package injects those
faults *deterministically* — a :class:`~repro.faults.plan.FaultPlan` is a
seeded, picklable description of exactly which frame or worker fails and
how — so every failure mode is a reproducible test case rather than a
flake.

Production paths pay nothing: every hook site takes ``fault_plan=None``
and the injector wrappers are only interposed when a plan is supplied.
"""

from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
)
from repro.faults.injector import FaultyFrameEmitter, retry_with_backoff

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedWorkerCrash",
    "FaultyFrameEmitter",
    "retry_with_backoff",
]
