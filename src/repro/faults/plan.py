"""Seedable fault plans: which frame or worker fails, and how.

A :class:`FaultPlan` is an immutable list of :class:`FaultSpec` entries
plus a seed.  Everything derived from it — which payload bytes flip,
which record is silently perturbed — comes from a ``random.Random``
keyed on ``(seed, target)``, so the same plan injects byte-identical
damage on every run and on every backend (the plan pickles across
process boundaries with no hidden RNG state).

Fault kinds cover the pipeline's transport and compute layers:

======================  ==================================================
``CORRUPT_FRAME``       flip bytes inside a frame's payload (CRC trips)
``TRUNCATE_FRAME``      cut a frame short (torn write / truncated tail)
``DROP_FRAME``          the frame never reaches the queue (sequence gap)
``STALL_FRAME``         sleep before enqueuing (backpressure / slow link)
``PERTURB_RECORD``      alter a record *under a valid CRC* — silent
                        non-determinism only the divergence sentinel or
                        the end-state digest can catch
``CRASH_WORKER``        the worker raises :class:`InjectedWorkerCrash`
``KILL_WORKER``         the worker process hard-exits (``os._exit``) —
                        pool-breaking death, thread workers degrade to a
                        crash
``STALL_WORKER``        the worker sleeps ``stall_s`` before starting —
                        drives per-task timeouts without killing anything
``DROP_MESSAGE``        a service protocol message is lost in transport
                        (the daemon never sees it; the client times out)
``DUPLICATE_MESSAGE``   a service message is delivered twice (network
                        retransmit) — submit dedup must absorb it
``GARBLE_MESSAGE``      bytes of a service message flip in transport —
                        the envelope CRC must catch it and the daemon
                        must answer with a structured rejection
======================  ==================================================

The three ``*_MESSAGE`` kinds target the replay service's socket layer
(``repro.service``): ``target`` is the daemon-side message index (every
received line counts, in arrival order).  The daemon additionally fires
``fire_worker_fault("accept", submit_index)`` between *accepting* a
submission and *journaling* it, so a ``KILL_WORKER`` spec with
``role="accept"`` crashes the daemon in the one window where an accepted
job could be lost — the crash/resume tests pin that it never acks first.
"""

from __future__ import annotations

import enum
import os
import random
import time
from dataclasses import dataclass, replace

from repro.rnr.records import (
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
)
from repro.rnr.serialize import (
    encode_frame,
    encode_frame_v3,
    encode_records,
    parse_frame,
    parse_frame_header,
)


class FaultKind(enum.Enum):
    """What goes wrong."""

    CORRUPT_FRAME = "corrupt_frame"
    TRUNCATE_FRAME = "truncate_frame"
    DROP_FRAME = "drop_frame"
    STALL_FRAME = "stall_frame"
    PERTURB_RECORD = "perturb_record"
    CRASH_WORKER = "crash_worker"
    KILL_WORKER = "kill_worker"
    STALL_WORKER = "stall_worker"
    DROP_MESSAGE = "drop_message"
    DUPLICATE_MESSAGE = "duplicate_message"
    GARBLE_MESSAGE = "garble_message"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``target`` selects the victim: a frame index for transport faults, a
    task index (alarm index, fleet session index) for worker faults.
    ``role`` scopes worker faults to one dispatch site (``"ar"``,
    ``"fleet"``, ``"cr"``, ``"journal"`` — the run store's frame append,
    where ``target`` is the frame index; ``"any"`` matches all).
    ``attempt`` makes a
    fault fire only on that retry attempt (0 = first try), which is how a
    plan models transient failures that succeed on retry.
    """

    kind: FaultKind
    target: int = 0
    role: str = "any"
    attempt: int = 0
    #: Seconds to sleep for ``STALL_FRAME``.
    stall_s: float = 0.05
    #: Payload bytes to flip for ``CORRUPT_FRAME``.
    flips: int = 3
    #: Bytes to keep for ``TRUNCATE_FRAME`` (``None`` = half the frame).
    keep_bytes: int | None = None


class InjectedWorkerCrash(RuntimeError):
    """The exception a ``CRASH_WORKER`` fault raises inside the victim."""


#: Records whose logged value feeds straight into guest state — the ones
#: a silent perturbation can meaningfully falsify.
_PERTURBABLE = (RdtscRecord, RdrandRecord, PioInRecord, MmioReadRecord,
                NetworkDmaRecord)


class FaultPlan:
    """A deterministic schedule of injected faults."""

    def __init__(self, specs, seed: int = 2018):
        self.specs = tuple(specs)
        self.seed = seed

    def __repr__(self):
        kinds = ", ".join(
            f"{spec.kind.value}@{spec.target}" for spec in self.specs
        )
        return f"FaultPlan(seed={self.seed}, [{kinds}])"

    def _rng(self, salt: int) -> random.Random:
        return random.Random((self.seed << 20) ^ salt)

    # ------------------------------------------------------------------
    # frame-transport faults
    # ------------------------------------------------------------------

    def frame_faults(self, index: int) -> list[FaultSpec]:
        """The transport faults planned for frame ``index``."""
        transport = (FaultKind.CORRUPT_FRAME, FaultKind.TRUNCATE_FRAME,
                     FaultKind.DROP_FRAME, FaultKind.STALL_FRAME,
                     FaultKind.PERTURB_RECORD)
        return [spec for spec in self.specs
                if spec.kind in transport and spec.target == index]

    def apply_to_frame(self, index: int, frame: bytes) -> bytes | None:
        """Damage one in-flight frame as planned; ``None`` drops it.

        Stalls sleep inline (the emitter runs on the producer's thread,
        so a stall really does delay the stream).  Multiple faults on the
        same frame compose in plan order.
        """
        for spec in self.frame_faults(index):
            if spec.kind is FaultKind.DROP_FRAME:
                return None
            if spec.kind is FaultKind.STALL_FRAME:
                time.sleep(spec.stall_s)
            elif spec.kind is FaultKind.TRUNCATE_FRAME:
                keep = (spec.keep_bytes if spec.keep_bytes is not None
                        else len(frame) // 2)
                frame = frame[:max(1, min(keep, len(frame) - 1))]
            elif spec.kind is FaultKind.CORRUPT_FRAME:
                frame = self._corrupt(index, frame, spec.flips)
            elif spec.kind is FaultKind.PERTURB_RECORD:
                frame = self._perturb(index, frame)
        return frame

    def _corrupt(self, index: int, frame: bytes, flips: int) -> bytes:
        """Flip ``flips`` payload bytes (never the magic/header), so the
        damage lands where only the CRC can see it."""
        try:
            header, payload_start = parse_frame_header(frame, 0)
        except Exception:
            payload_start = 1  # already-damaged frame: flip anywhere past magic
        if payload_start >= len(frame):
            return frame
        rng = self._rng(index * 7919 + 1)
        out = bytearray(frame)
        for _ in range(max(1, flips)):
            position = rng.randrange(payload_start, len(frame))
            out[position] ^= 1 + rng.randrange(255)
        return bytes(out)

    def _perturb(self, index: int, frame: bytes) -> bytes:
        """Silently alter one record, then re-frame with a *valid* CRC.

        Models nondeterminism below the integrity layer (a bad NIC DMA, a
        buggy recorder): the transport accepts the frame, the replayed
        execution diverges, and only the divergence sentinel (or the
        final state digest) can tell.  A frame with no perturbable record
        passes through unchanged.
        """
        header, records, _ = parse_frame(frame, 0)
        # Prefer records whose value lands straight in a register — the
        # CPU-state sentinel sees those within one window.  DMA payload
        # damage only surfaces in memory (the final full-state digest),
        # so it is the fallback, not the default.
        register_fed = [position for position, record in enumerate(records)
                        if isinstance(record, _PERTURBABLE)
                        and not isinstance(record, NetworkDmaRecord)]
        candidates = register_fed or [
            position for position, record in enumerate(records)
            if isinstance(record, _PERTURBABLE)]
        if not candidates:
            return frame
        rng = self._rng(index * 7919 + 2)
        victim = rng.choice(candidates)
        record = records[victim]
        if isinstance(record, NetworkDmaRecord):
            words = list(record.words)
            if not words:
                return frame
            slot = rng.randrange(len(words))
            words[slot] = (words[slot] + 1) % (2 ** 64)
            records[victim] = replace(record, words=tuple(words))
        else:
            records[victim] = replace(
                record, value=(record.value + 1) % (2 ** 64))
        payload = encode_records(records)
        if header.version == 3:
            return encode_frame_v3(payload, header.frame_index,
                                   header.record_count, header.first_icount,
                                   header.last_icount)
        return encode_frame(payload, header.record_count,
                            header.first_icount, header.last_icount)

    # ------------------------------------------------------------------
    # service message faults
    # ------------------------------------------------------------------

    def message_faults(self, index: int) -> list[FaultSpec]:
        """The service-transport faults planned for message ``index``."""
        kinds = (FaultKind.DROP_MESSAGE, FaultKind.DUPLICATE_MESSAGE,
                 FaultKind.GARBLE_MESSAGE)
        return [spec for spec in self.specs
                if spec.kind in kinds and spec.target == index]

    def apply_to_message(self, index: int, line: bytes) -> list[bytes]:
        """Damage one received protocol line; the daemon processes the
        returned list in order.

        Empty list = the message was lost in transport (``DROP``); two
        entries = a network retransmit delivered it twice (``DUPLICATE``
        — submit dedup must make this idempotent); flipped bytes
        (``GARBLE``) must trip the envelope CRC.  Faults on the same
        message compose in plan order, mirroring :meth:`apply_to_frame`.
        """
        variants = [line]
        for spec in self.message_faults(index):
            if spec.kind is FaultKind.DROP_MESSAGE:
                return []
            if spec.kind is FaultKind.DUPLICATE_MESSAGE:
                variants = variants + [bytes(copy) for copy in variants]
            elif spec.kind is FaultKind.GARBLE_MESSAGE:
                variants = [self._garble(index, copy, spec.flips)
                            for copy in variants]
        return variants

    def _garble(self, index: int, line: bytes, flips: int) -> bytes:
        """Flip bytes of a protocol line, never minting a newline (the
        transport is line-framed, so injected ``\\n`` would split one
        damaged message into two — a different fault than planned)."""
        if not line:
            return line
        rng = self._rng(index * 7919 + 3)
        out = bytearray(line)
        for _ in range(max(1, flips)):
            position = rng.randrange(len(out))
            out[position] ^= 1 + rng.randrange(255)
        return bytes(byte if byte != 0x0A else 0x3F for byte in out)

    # ------------------------------------------------------------------
    # worker faults
    # ------------------------------------------------------------------

    def worker_fault(self, role: str, index: int,
                     attempt: int = 0) -> FaultSpec | None:
        """The worker fault planned for (``role``, task ``index``) on this
        ``attempt``, if any."""
        for spec in self.specs:
            if spec.kind not in (FaultKind.CRASH_WORKER,
                                 FaultKind.KILL_WORKER,
                                 FaultKind.STALL_WORKER):
                continue
            if spec.role not in ("any", role):
                continue
            if spec.target == index and spec.attempt == attempt:
                return spec
        return None

    def fire_worker_fault(self, role: str, index: int, attempt: int = 0,
                          allow_hard_kill: bool = True):
        """Kill the calling worker if the plan says so.

        ``CRASH_WORKER`` raises :class:`InjectedWorkerCrash`;
        ``KILL_WORKER`` hard-exits the process (the pool sees a dead
        worker, exactly like an OOM kill) unless ``allow_hard_kill`` is
        false (thread workers — exiting would kill the whole interpreter
        — degrade to a crash).
        """
        spec = self.worker_fault(role, index, attempt)
        if spec is None:
            return
        if spec.kind is FaultKind.STALL_WORKER:
            time.sleep(spec.stall_s)
            return
        if spec.kind is FaultKind.KILL_WORKER and allow_hard_kill:
            os._exit(17)
        raise InjectedWorkerCrash(
            f"fault plan killed {role} worker on task {index} "
            f"(attempt {attempt})"
        )
