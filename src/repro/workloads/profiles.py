"""Benchmark profiles: the event-mix knobs behind Table 3's workloads.

Values are calibrated so the *shapes* of the paper's results emerge from
simulation: apache has the highest input-log rate (network payload logging)
and the only residual underflow false alarms (deep driver recursion);
fileio and mysql are dominated by rdtsc recording; make and radiosity are
computation-heavy with little recording overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class BenchmarkProfile:
    """Per-benchmark workload parameters."""

    name: str
    #: Worker tasks started at boot.
    tasks: int
    #: Main-loop iterations per worker.
    iterations: int
    #: User-mode rdtsc reads per iteration (application timing calls).
    rdtsc_per_iter: int
    #: ALU-loop length per iteration (pure compute).
    compute_per_iter: int
    #: User call-tree depth exercised per iteration.
    call_depth: int
    #: Issue a disk read every N iterations (0 = never).
    disk_read_every: int = 0
    #: Issue a disk write every N iterations (0 = never).
    disk_write_every: int = 0
    #: Network receives per iteration (blocks until a packet arrives).
    recv_per_iter: int = 0
    #: Feed received messages to the (vulnerable) kernel message parser.
    process_msg: bool = False
    #: Parse received messages in *user* code with an unchecked stack-buffer
    #: copy — the user-context ROP surface (§1: "RnR-Safe can secure both").
    user_parser: bool = False
    #: Spawn a short-lived child task every N iterations (0 = never).
    spawn_every: int = 0
    #: Perform a setjmp/longjmp unwinding every N iterations (0 = never).
    setjmp_every: int = 0
    #: Voluntary yield every N iterations (0 = never).
    yield_every: int = 4
    #: Mean packets per guest second arriving from the outside world.
    packet_rate_per_s: float = 0.0
    #: Packet length range in words (terminator included).
    packet_len_low: int = 16
    packet_len_high: int = 64
    #: How many packets to schedule in total (bounds the world schedule).
    packet_budget: int = 0

    def __post_init__(self):
        if self.tasks < 1:
            raise WorkloadError(f"{self.name}: needs at least one task")
        if self.recv_per_iter and self.packet_budget <= 0:
            raise WorkloadError(
                f"{self.name}: receivers need a packet budget"
            )
        if self.packet_len_low < 4 or self.packet_len_high < self.packet_len_low:
            raise WorkloadError(f"{self.name}: bad packet length range")


#: Web server: network-dominated.  Big packets drive the recursive ring
#: copy past the RAS capacity — the paper's only residual false alarms.
APACHE = BenchmarkProfile(
    name="apache",
    tasks=2,
    iterations=30,
    rdtsc_per_iter=2,
    compute_per_iter=2400,
    call_depth=6,
    recv_per_iter=1,
    process_msg=True,
    setjmp_every=16,
    yield_every=0,
    packet_rate_per_s=55.0,
    packet_len_low=80,
    packet_len_high=420,
    packet_budget=66,
)

#: SysBench fileio: direct I/O with per-request timing — rdtsc plus disk
#: command/DMA/interrupt traffic.
FILEIO = BenchmarkProfile(
    name="fileio",
    tasks=2,
    iterations=16,
    rdtsc_per_iter=5,
    compute_per_iter=2600,
    call_depth=4,
    disk_read_every=3,
    disk_write_every=5,
    yield_every=0,
)

#: Kernel compile: compute-heavy, moderate disk reads, compiler child
#: processes spawned and reaped (exercises BackRAS recycling).
MAKE = BenchmarkProfile(
    name="make",
    tasks=2,
    iterations=20,
    rdtsc_per_iter=2,
    compute_per_iter=3000,
    call_depth=10,
    disk_read_every=4,
    spawn_every=5,
    yield_every=0,
)

#: SysBench OLTP: transaction timing (rdtsc-heavy), tables cached in
#: memory so little disk traffic.
MYSQL = BenchmarkProfile(
    name="mysql",
    tasks=3,
    iterations=12,
    rdtsc_per_iter=4,
    compute_per_iter=2300,
    call_depth=8,
    setjmp_every=6,
    yield_every=0,
)

#: SPLASH-2 radiosity: almost pure user-mode compute with deep call trees.
RADIOSITY = BenchmarkProfile(
    name="radiosity",
    tasks=1,
    iterations=25,
    rdtsc_per_iter=0,
    compute_per_iter=2200,
    call_depth=16,
    yield_every=0,
)

ALL_PROFILES = (APACHE, FILEIO, MAKE, MYSQL, RADIOSITY)

_BY_NAME = {profile.name: profile for profile in ALL_PROFILES}


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up a paper benchmark by name."""
    if name not in _BY_NAME:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {sorted(_BY_NAME)}"
        )
    return _BY_NAME[name]
