"""Synthetic workloads calibrated to the paper's benchmark mix (Table 3).

Each profile reproduces the event *mix* that drives the paper's figures:
apache is network-dominated (highest log rate, driver-recursion underflows),
fileio and mysql are rdtsc-heavy with disk traffic, make is compute plus
compilation-style task spawning, and radiosity is almost pure user-mode
compute.  Programs are generated as real guest ISA code, so every recorded
event comes from executed instructions.
"""

from repro.workloads.profiles import (
    APACHE,
    FILEIO,
    MAKE,
    MYSQL,
    RADIOSITY,
    ALL_PROFILES,
    BenchmarkProfile,
    profile_by_name,
)
from repro.workloads.suite import build_workload, kernel_for_layout
from repro.workloads.userprog import UserProgram, build_user_program

__all__ = [
    "BenchmarkProfile",
    "APACHE",
    "FILEIO",
    "MAKE",
    "MYSQL",
    "RADIOSITY",
    "ALL_PROFILES",
    "profile_by_name",
    "build_workload",
    "kernel_for_layout",
    "UserProgram",
    "build_user_program",
]
