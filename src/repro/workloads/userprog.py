"""User-program generation: guest ISA code for one workload task.

Each task's program is a main loop mixing compute, timing reads, call
trees, file and network I/O, task spawning, and occasional setjmp/longjmp
unwinding, as dictated by its :class:`~repro.workloads.profiles.
BenchmarkProfile`.  Programs are real code: every rdtsc, PIO access, and
packet consumed during recording comes from executing these instructions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa.assembler import Asm, AssembledImage
from repro.isa.opcodes import SP
from repro.kernel.layout import KernelLayout, Syscall
from repro.workloads.profiles import BenchmarkProfile

#: Data-region offsets within a task's private user-data area.
JMPBUF_OFF = 0
#: An application-level flag cell ("admin mode"): the user-mode ROP
#: attack's escalation target.
FLAG_OFF = 8
IOBUF_OFF = 16
MSGBUF_OFF = 300

#: Stack-buffer size of the vulnerable user parser (matches the kernel
#: parser so benign messages, whose terminator sits within the first ~100
#: words, never overflow it).
USER_PARSE_BUFFER = 128

#: The value the user-mode payload writes into the flag cell.
ADMIN_MAGIC = 0xAD317


@dataclass(frozen=True)
class UserProgram:
    """One task's assembled program."""

    image: AssembledImage
    entry: int
    child_entry: int | None


def build_user_program(profile: BenchmarkProfile, layout: KernelLayout,
                       tid: int, base: int, seed: int) -> UserProgram:
    """Generate the program for worker ``tid`` at code address ``base``.

    ``tid`` indexes the task's private data region and varies the generated
    code slightly (as different processes would), seeded deterministically.
    """
    rng = random.Random((seed << 16) ^ tid)
    data_base, _ = layout.user_data_region(tid)
    prefix = f"t{tid}"
    asm = Asm(base=base)

    asm.begin_function(f"{prefix}_main")
    asm.li(12, profile.iterations)
    asm.label(f"{prefix}_loop")
    asm.cmpi(12, 0)
    asm.jz(f"{prefix}_exit")
    _emit_compute(asm, rng, profile.compute_per_iter)
    for _ in range(profile.rdtsc_per_iter):
        asm.syscall(int(Syscall.GETTIME))
    if profile.call_depth:
        asm.call(f"{prefix}_f0")
    if profile.disk_read_every:
        _emit_every(asm, prefix, "dread", profile.disk_read_every, 12)
        _emit_disk_op(asm, Syscall.READ_BLOCK, tid, 0, data_base + IOBUF_OFF)
        asm.label(f"{prefix}_dread_skip")
    if profile.disk_write_every:
        _emit_every(asm, prefix, "dwrite", profile.disk_write_every, 12)
        _emit_disk_op(asm, Syscall.WRITE_BLOCK, tid, 17,
                      data_base + IOBUF_OFF)
        asm.label(f"{prefix}_dwrite_skip")
    for _ in range(profile.recv_per_iter):
        asm.li(1, data_base + MSGBUF_OFF)
        asm.syscall(int(Syscall.RECV))
        if profile.process_msg:
            asm.li(1, data_base + MSGBUF_OFF)
            asm.syscall(int(Syscall.PROCESS_MSG))
        if profile.user_parser:
            asm.li(1, data_base + MSGBUF_OFF)
            asm.call(f"{prefix}_parse")
    if profile.spawn_every:
        _emit_every(asm, prefix, "spawn", profile.spawn_every, 12)
        asm.li(1, f"{prefix}_child")
        asm.syscall(int(Syscall.SPAWN))
        asm.label(f"{prefix}_spawn_skip")
    if profile.setjmp_every:
        _emit_every(asm, prefix, "setjmp", profile.setjmp_every, 12)
        asm.call(f"{prefix}_outer")
        asm.label(f"{prefix}_setjmp_skip")
    if profile.yield_every:
        _emit_every(asm, prefix, "yield", profile.yield_every, 12)
        asm.syscall(int(Syscall.YIELD))
        asm.label(f"{prefix}_yield_skip")
    asm.addi(12, 12, -1)
    asm.jmp(f"{prefix}_loop")
    asm.label(f"{prefix}_exit")
    asm.syscall(int(Syscall.EXIT))
    asm.label(f"{prefix}_unreachable")
    asm.jmp(f"{prefix}_unreachable")
    asm.end_function()

    _emit_call_tree(asm, rng, prefix, profile.call_depth)
    if profile.user_parser:
        _emit_user_parser(asm, prefix, data_base + FLAG_OFF)
    if profile.setjmp_every:
        _emit_setjmp_family(asm, prefix, data_base + JMPBUF_OFF)
    child_entry = None
    if profile.spawn_every:
        child_entry = _emit_child(asm, rng, prefix)

    image = asm.assemble()
    return UserProgram(
        image=image,
        entry=image.addr_of(f"{prefix}_main"),
        child_entry=child_entry if child_entry is None
        else image.addr_of(f"{prefix}_child"),
    )


def _emit_every(asm: Asm, prefix: str, what: str, period: int, counter: int):
    """Emit 'skip unless counter % period == 0' using div/mul/sub."""
    asm.li(4, period)
    asm.div(5, counter, 4)
    asm.mul(5, 5, 4)
    asm.sub(5, counter, 5)
    asm.cmpi(5, 0)
    asm.jnz(f"{prefix}_{what}_skip")


def _emit_compute(asm: Asm, rng: random.Random, units: int):
    """An ALU loop of roughly ``4 * units`` instructions."""
    if units <= 0:
        return
    jitter = max(1, int(units * (0.9 + 0.2 * rng.random())))
    loop = f"compute_{asm.here:x}"
    asm.li(4, jitter)
    asm.label(loop)
    asm.add(5, 5, 4)
    asm.xor(6, 5, 4)
    asm.addi(4, 4, -1)
    asm.cmpi(4, 0)
    asm.jnz(loop)


def _emit_disk_op(asm: Asm, call: Syscall, tid: int, salt: int, iobuf: int):
    """One disk read/write of a block that varies with the loop counter."""
    asm.li(5, 7 + salt)
    asm.mul(4, 12, 5)
    asm.addi(4, 4, tid + salt)
    asm.li(5, 255)
    asm.and_(1, 4, 5)
    asm.li(2, iobuf)
    asm.syscall(int(call))


def _emit_call_tree(asm: Asm, rng: random.Random, prefix: str, depth: int):
    """A linear chain of small functions, ``f0`` calling into ``f{d-1}``."""
    for level in range(depth):
        asm.begin_function(f"{prefix}_f{level}")
        for _ in range(rng.randint(1, 3)):
            asm.add(5, 5, 4)
        if level + 1 < depth:
            asm.call(f"{prefix}_f{level + 1}")
        asm.ret()
        asm.end_function()


def _emit_setjmp_family(asm: Asm, prefix: str, jmpbuf: int):
    """setjmp in ``outer``, longjmp three frames deeper (§4.1, imperfect
    nesting): the unwound frames orphan RAS entries, so ``outer``'s own
    return raises a benign mismatch alarm."""
    asm.begin_function(f"{prefix}_outer")
    asm.li(4, jmpbuf)
    asm.st(4, SP, 0)                       # jmpbuf[0] = sp
    asm.li(5, f"{prefix}_landing")
    asm.st(4, 5, 1)                        # jmpbuf[1] = landing pc
    asm.call(f"{prefix}_try1")
    asm.label(f"{prefix}_landing")
    asm.ret()                              # RAS top is an orphan: mismatch
    asm.end_function()
    for level in (1, 2):
        asm.begin_function(f"{prefix}_try{level}")
        asm.add(5, 5, 4)
        asm.call(f"{prefix}_try{level + 1}")
        asm.ret()
        asm.end_function()
    asm.begin_function(f"{prefix}_try3")
    asm.li(4, jmpbuf)
    asm.ld(SP, 4, 0)                       # longjmp: restore sp
    asm.ld(5, 4, 1)
    asm.jmpi(5)                            # ... and jump to the landing
    asm.end_function()


def _emit_user_parser(asm: Asm, prefix: str, flag_addr: int):
    """The user-space twin of the kernel's vulnerable parser.

    ``parse`` copies the message into a fixed stack buffer with no bounds
    check; ``admin`` is the privileged application routine a hijacked
    return can reach (it flips the task's admin flag)."""
    asm.begin_function(f"{prefix}_parse")
    asm.mov(2, 1)                          # src
    asm.addi(SP, SP, -USER_PARSE_BUFFER)
    asm.mov(1, SP)                         # dest = stack buffer
    asm.call(f"{prefix}_copy")
    asm.addi(SP, SP, USER_PARSE_BUFFER)
    asm.ret()                              # the hijackable return
    asm.end_function()
    asm.begin_function(f"{prefix}_copy")
    asm.label(f"{prefix}_copy_loop")
    asm.ld(4, 2, 0)
    asm.st(1, 4, 0)
    asm.cmpi(4, 0)
    asm.jz(f"{prefix}_copy_done")
    asm.addi(1, 1, 1)
    asm.addi(2, 2, 1)
    asm.jmp(f"{prefix}_copy_loop")
    asm.label(f"{prefix}_copy_done")
    asm.ret()
    asm.end_function()
    asm.begin_function(f"{prefix}_admin")
    asm.li(4, ADMIN_MAGIC)
    asm.li(5, flag_addr)
    asm.st(5, 4, 0)
    asm.ret()
    asm.end_function()


def _emit_child(asm: Asm, rng: random.Random, prefix: str) -> str:
    """A short-lived spawned task (a 'compiler process' under make)."""
    asm.begin_function(f"{prefix}_child")
    _emit_compute(asm, rng, 120)
    asm.syscall(int(Syscall.EXIT))
    asm.label(f"{prefix}_child_spin")
    asm.jmp(f"{prefix}_child_spin")
    asm.end_function()
    return f"{prefix}_child"
