"""Workload assembly: profile -> reproducible :class:`MachineSpec`.

Everything a recording or replaying machine needs is derived here,
deterministically from the profile and a seed: the (cached) kernel image,
one generated program per worker task, and the external packet-arrival
schedule.
"""

from __future__ import annotations

import functools
import random

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.errors import WorkloadError
from repro.hypervisor.machine import MachineSpec
from repro.kernel.builder import build_kernel
from repro.kernel.image import KernelImage
from repro.kernel.layout import DEFAULT_LAYOUT, KernelLayout
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.userprog import UserProgram, build_user_program

#: Alignment of consecutive user images in the code window.
_IMAGE_ALIGN = 16


@functools.lru_cache(maxsize=8)
def kernel_for_layout(layout: KernelLayout = DEFAULT_LAYOUT) -> KernelImage:
    """Build (and cache) the kernel image for a layout."""
    return build_kernel(layout)


def build_workload(profile: BenchmarkProfile,
                   config: SimulationConfig = DEFAULT_CONFIG,
                   layout: KernelLayout = DEFAULT_LAYOUT,
                   seed: int | None = None) -> MachineSpec:
    """Assemble the full machine spec for one benchmark."""
    seed = config.seed if seed is None else seed
    kernel = kernel_for_layout(layout)
    programs = _build_programs(profile, layout, seed)
    user_images = tuple(program.image for program in programs)
    init_entries = tuple(program.entry for program in programs)
    packet_schedule = _build_packet_schedule(profile, config, seed)
    return MachineSpec(
        label=profile.name,
        kernel=kernel,
        user_images=user_images,
        init_entries=init_entries,
        config=config,
        timer_period_cycles=40_000,
        timer_jitter_cycles=3_000,
        packet_schedule=packet_schedule,
        disk_seed=seed ^ 0xD15C,
        world_seed=seed,
    )


def _build_programs(profile: BenchmarkProfile, layout: KernelLayout,
                    seed: int) -> list[UserProgram]:
    """One program per worker; workers land in task slots 1..N at boot."""
    if profile.tasks + 1 > layout.max_tasks:
        raise WorkloadError(
            f"{profile.name}: {profile.tasks} workers exceed the task table"
        )
    programs = []
    base = layout.user_code_base
    for worker in range(profile.tasks):
        tid = worker + 1  # slot 0 is the idle thread
        program = build_user_program(profile, layout, tid, base, seed)
        programs.append(program)
        base = program.image.end + _IMAGE_ALIGN
        if base >= layout.user_data_base:
            raise WorkloadError(
                f"{profile.name}: user programs overrun the code window"
            )
    return programs


def _build_packet_schedule(
    profile: BenchmarkProfile, config: SimulationConfig, seed: int,
) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """Pre-draw the external packet arrivals (pure data, reproducible)."""
    if profile.packet_budget <= 0:
        return ()
    rng = random.Random((seed << 8) ^ 0xBEEF)
    interval = config.cycles_per_second / profile.packet_rate_per_s
    schedule = []
    cycle = 5_000.0  # let the guest boot and program the NIC first
    for _ in range(profile.packet_budget):
        cycle += interval * (0.5 + rng.random())
        schedule.append((int(cycle), _benign_payload(profile, rng)))
    return tuple(schedule)


def _benign_payload(profile: BenchmarkProfile,
                    rng: random.Random) -> tuple[int, ...]:
    """A well-formed message: nonzero words with an early terminator.

    The zero terminator sits well inside the kernel parser's 128-word stack
    buffer, so benign traffic never overflows it; words after the
    terminator are opaque payload the parser ignores but the driver still
    copies (driving the recursive ring copy deep on big packets).
    """
    length = rng.randint(profile.packet_len_low, profile.packet_len_high)
    terminator = min(length - 1, rng.randint(8, 100))
    words = []
    for index in range(length):
        if index == terminator:
            words.append(0)
        else:
            words.append(rng.getrandbits(32) | 1)
    return tuple(words)
