"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the deployment's moving parts:

* ``record``  — run one benchmark under the Rec setup (optionally carrying
  an attack) and save the session (manifest + input log) to a file;
* ``replay``  — load a session on "another machine" and run the
  checkpointing replayer over it, verifying the state digest;
* ``hunt``    — the full Figure 1 pipeline in one shot, with verdicts
  (``--pipeline`` overlaps recording and checkpointing replay);
* ``fleet``   — run many independent sessions across a worker pool
  (``--watch`` renders the live heartbeat board while they run;
  ``--store`` turns on the self-healing supervisor, which resumes dead
  or wedged sessions from their durable run stores);
* ``resume``  — continue an interrupted durable run (``--store``) from
  whatever its crash-safe store recovers;
* ``fsck``    — validate a run store's CRCs and print its resume plan
  (exit 0 clean / 1 recoverable / 2 corrupt; ``--json`` for CI);
* ``diff``    — compare two recorded runs (sessions or run stores) and
  pin their first semantic divergence, bisecting silent state
  divergences to an exact instruction from the store's checkpoints;
* ``stats``   — run one pipelined session with telemetry on and print the
  per-phase/per-metric tables (``--prom`` for Prometheus text,
  ``--trace`` to save a Chrome trace, ``--profile``/``--flame`` for the
  deterministic guest profiler); point it at a run-store or fleet
  directory instead to reconstruct the durable telemetry journal
  post-hoc, or ``--compare A B [--slo FILE]`` to gate a candidate run
  against a baseline (exit 1 on SLO breach);
* ``top``     — live fleet board fed by the durable telemetry journals
  (instr/s sparklines, WEDGED?/healed flags; works from any process);
* ``serve``   — run the replay-service scheduler daemon on a store
  directory: a durable priority job queue (alarm-bearing submissions
  preempt clean catch-up) that survives kill -9 with no lost accepted
  jobs and no double execution;
* ``submit``  — submit one session to a running daemon over its socket;
* ``queue``   — print the daemon's queue (or read the queue journal
  straight off disk when no daemon is up);
* ``drain``   — close admissions and optionally wait out / stop the
  daemon;
* ``gadgets`` — scan the kernel image like an attacker would;
* ``bench``   — print one of the regenerated figure tables.
"""

from __future__ import annotations

import argparse
import sys

from repro.rnr.session import SessionManifest, load_session, save_session
from repro.workloads import ALL_PROFILES

_BENCHMARKS = [profile.name for profile in ALL_PROFILES]


def _cmd_record(args) -> int:
    from repro.rnr.recorder import Recorder, RecorderOptions

    manifest = SessionManifest(
        benchmark=args.benchmark,
        seed=args.seed,
        attack=args.attack,
        max_instructions=args.budget,
        exec_backend=args.backend,
    )
    spec = manifest.build_spec()
    epoch_boundaries = ()
    if args.cr_workers > 1:
        from repro.replay.epoch import plan_epoch_boundaries

        epoch_boundaries = plan_epoch_boundaries(args.budget,
                                                 args.cr_workers,
                                                 oversample=4)
    options = RecorderOptions(
        max_instructions=args.budget,
        sentinel_records=args.sentinel,
        epoch_boundaries=epoch_boundaries,
    )
    if args.store:
        # Durable recording: journal frames into a crash-safe run store
        # as they are produced, then seal it.
        from repro.core.parallel import _run_producer
        from repro.store import RunStoreWriter

        store = RunStoreWriter(args.store, manifest, fsync=args.fsync,
                               frame_records=spec.config.frame_records)
        try:
            run, _ = _run_producer(spec, options,
                                   spec.config.frame_records,
                                   store.append_frame)
            store.seal_log(run)
        except BaseException:
            store.close()
            raise
    else:
        run = Recorder(spec, options).run()
    metrics = run.metrics
    print(f"recorded {spec.label}: {metrics.instructions} instructions, "
          f"{len(run.log)} records ({metrics.log_bytes} bytes), "
          f"{metrics.alarms} alarms, stop={run.stop_reason}")
    if run.epoch_plan is not None:
        plan = run.epoch_plan
        cuts = ", ".join(f"{b.icount}@{b.log_position}"
                         for b in plan.boundaries)
        print(f"epoch plan: {plan.epochs} candidate epochs for "
              f"{args.cr_workers} CR workers (replay thins to a balanced "
              f"partition; boundaries: {cuts})")
    if args.store:
        print(f"run store sealed at {args.store} (fsync={args.fsync})")
    if args.out:
        save_session(args.out, manifest, run.log, framed=args.framed)
        print(f"session saved to {args.out}"
              + (" (framed)" if args.framed else ""))
    return 0


def _cmd_replay(args) -> int:
    from repro.replay import CheckpointingOptions, CheckpointingReplayer

    manifest, log = load_session(args.session)
    spec = manifest.build_spec()
    replayer = CheckpointingReplayer(
        spec, log, CheckpointingOptions(period_s=args.checkpoint_period),
    )
    result = replayer.run_to_end()
    replay = result.replay
    print(f"replayed {spec.label}: {replay.metrics.instructions} "
          f"instructions, digest verified={replay.digest_checked}, "
          f"{len(result.store)} checkpoints, "
          f"{result.alarms_seen} alarms seen "
          f"({result.dismissed_underflows} dismissed, "
          f"{len(result.pending_alarms)} pending)")
    return 0 if replay.reached_end else 1


def _cmd_hunt(args) -> int:
    from repro.core.framework import RnRSafe, RnRSafeOptions
    from repro.rnr.recorder import RecorderOptions

    manifest = SessionManifest(
        benchmark=args.benchmark, seed=args.seed, attack=args.attack,
        max_instructions=args.budget, exec_backend=args.backend,
    )
    spec = manifest.build_spec()
    run_store = None
    if args.store:
        from repro.store import RunStoreWriter

        run_store = RunStoreWriter(args.store, manifest, fsync=args.fsync,
                                   frame_records=spec.config.frame_records)
    options = RnRSafeOptions(
        recorder=RecorderOptions(max_instructions=args.budget,
                                 stall_on_alarm=args.stall,
                                 sentinel_records=args.sentinel),
        pipeline=args.pipeline,
        pipeline_backend=args.pipeline_backend,
        run_store=run_store,
        cr_workers=args.cr_workers,
    )
    report = RnRSafe(spec, options).run()
    if args.store:
        print(f"run store at {args.store} (fsync={args.fsync})")
    print(report.summary())
    for outcome in report.outcomes:
        print(f"  {outcome.alarm.kind.value} @ pc={outcome.alarm.pc:#x}: "
              f"{outcome.verdict.kind.value} — "
              f"{outcome.verdict.explanation}")
    return 0 if not report.inconclusive else 1


def _cmd_resume(args) -> int:
    from repro.core.parallel import record_and_replay_pipelined
    from repro.errors import LogError
    from repro.replay import CheckpointingOptions
    from repro.rnr.recorder import RecorderOptions
    from repro.store import RunStoreWriter, recover_run

    try:
        point = recover_run(args.store)
    except LogError as exc:
        print(f"resume: {exc}", file=sys.stderr)
        return 1
    for note in point.notes:
        print(f"note: {note}")
    spec = point.session.build_spec()
    store = RunStoreWriter(
        args.store, point.session,
        fsync=args.fsync if args.fsync else point.fsync,
        frame_records=point.frame_records or spec.config.frame_records,
        attempt=point.attempt + 1,
        resume=point,
    )
    if args.cr_workers > 1 and point.recording_complete:
        # The journal holds the whole recording, so the healed replay can
        # be partitioned at the store's durable checkpoints and re-run
        # epoch-parallel instead of sequentially.
        from repro.core.parallel import replay_parallel

        plan = point.epoch_plan(spec, workers=args.cr_workers)
        par = replay_parallel(spec, point.log, plan,
                              max_workers=args.cr_workers,
                              resolve_ars=True)
        kinds = ([v.kind.value for v in par.resolution.verdicts]
                 if par.resolution is not None else [])
        store.finish(par.final_cpu_state.icount, kinds)
        print(f"resumed {spec.label} from {args.store}: "
              f"epoch-parallel re-replay, {par.epochs} epochs on "
              f"{par.workers} workers ({par.backend} backend), "
              f"{par.final_cpu_state.icount} instructions, "
              f"{len(par.checkpointing.store)} checkpoints, "
              f"verdicts: {', '.join(kinds) if kinds else '-'}")
        return 0
    run = record_and_replay_pipelined(
        spec,
        RecorderOptions(max_instructions=point.session.max_instructions),
        CheckpointingOptions(period_s=args.checkpoint_period),
        backend="thread",
        frame_records=point.frame_records or spec.config.frame_records,
        run_store=store,
        resume=point,
    )
    verdicts = (", ".join(v.kind.value for v in run.resolution.verdicts)
                if run.resolution and run.resolution.verdicts else "-")
    print(f"resumed {spec.label} from {args.store}: "
          f"{run.final_cpu_state.icount} instructions, "
          f"{len(run.checkpointing.store)} checkpoints, "
          f"verdicts: {verdicts}")
    if run.recovery:
        print(f"recovery: {run.recovery}")
    return 0


def _cmd_fsck(args) -> int:
    from repro.errors import LogError
    from repro.store import FsckReport, fsck_report, fsck_run

    try:
        report = fsck_report(args.store)
    except LogError as exc:
        # Manifest-level damage (or not a run store at all): recovery
        # cannot even produce a resume point.  Exit 2 distinguishes this
        # from exit 1's "damaged but resumable".
        report = FsckReport(status="corrupt", path=str(args.store),
                            notes=(str(exc),), exit_code=2)
        if args.json:
            print(report.canonical_json())
        else:
            print(f"fsck: {exc}", file=sys.stderr)
        return report.exit_code
    if args.json:
        print(report.canonical_json())
    else:
        print(fsck_run(args.store))
        if report.status != "clean":
            print(f"status: {report.status}")
    return report.exit_code


def _cmd_diff(args) -> int:
    from repro.diffing import diff_runs, resolve_rules, RunSource
    from repro.errors import LogError
    from repro.obs.telemetry import Telemetry

    try:
        rules = resolve_rules(args.ignore or ())
        source_a = RunSource.open(args.run_a)
        source_b = RunSource.open(args.run_b)
    except LogError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    report = diff_runs(
        source_a, source_b,
        rules=rules,
        context=args.context,
        bisect=not args.no_bisect,
        telemetry=Telemetry.for_tool("diff"),
    )
    if args.json:
        print(report.canonical_json())
    else:
        print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as sink:
            sink.write(report.canonical_json())
            sink.write("\n")
    return report.exit_code


def _emit_stats(args, snapshot, headline: str, label: str) -> int:
    """Shared tail of every ``stats`` mode: tables/prom/trace/flame."""
    import json

    if args.prom:
        print(snapshot.prometheus(), end="")
    else:
        print(headline)
        print()
        print(snapshot.tables(), end="")
    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as sink:
            json.dump(snapshot.chrome_trace(label=label), sink)
        print(f"chrome trace written to {args.trace}", file=sys.stderr)
    if args.flame:
        if snapshot.profile is None or not snapshot.profile.sample_count:
            print("no profile samples to export; run with --profile "
                  "(or profile a store that was recorded with it)",
                  file=sys.stderr)
            return 1
        with open(args.flame, "w", encoding="utf-8") as sink:
            sink.write(snapshot.profile.collapsed_stacks())
        print(f"collapsed stacks written to {args.flame} "
              f"(feed to flamegraph.pl / speedscope)", file=sys.stderr)
    return 0


def _stats_compare(args) -> int:
    from repro.obs.aggregate import compare_stores, load_slo

    rules = load_slo(args.slo) if args.slo else None
    baseline, candidate = args.compare
    try:
        report = compare_stores(baseline, candidate, rules)
    except FileNotFoundError as exc:
        print(f"stats --compare: {exc}", file=sys.stderr)
        return 2
    print(f"baseline:  {baseline}")
    print(f"candidate: {candidate}")
    print()
    print(report.render())
    return report.exit_code


def _stats_posthoc(args) -> int:
    from repro.obs.aggregate import (
        aggregate,
        load_directory_telemetry,
        render_rollups,
    )

    loaded = load_directory_telemetry(args.target)
    if not loaded:
        print(f"no telemetry journals under {args.target} (was the run "
              f"durable? `--store DIR` writes telemetry.jsonl)",
              file=sys.stderr)
        return 2
    for path, _snapshot, scan in loaded:
        for note in scan.notes:
            print(f"{path}: {note}", file=sys.stderr)
    snapshots = [snap for _, snap, _ in loaded if snap is not None]
    if not snapshots:
        print(f"telemetry journals under {args.target} hold beats but no "
              f"snapshots; nothing to reconstruct", file=sys.stderr)
        return 2
    if len(loaded) > 1:
        # A fleet directory: the per-KPI rollup is the headline; the
        # merged tables still follow so --prom/--trace/--flame work.
        print(f"{args.target}: {len(loaded)} session store(s)")
        print()
        print(render_rollups(aggregate(snapshots)))
        print()
    from repro.obs.telemetry import TelemetrySnapshot

    snapshot = (snapshots[0] if len(snapshots) == 1
                else TelemetrySnapshot.merged(snapshots, actor="run"))
    headline = (f"{args.target}: reconstructed from "
                f"{len(snapshots)} durable telemetry journal(s)")
    return _emit_stats(args, snapshot, headline, label=args.target)


def _cmd_stats(args) -> int:
    import dataclasses
    import os

    from repro.core.parallel import record_and_replay_pipelined
    from repro.rnr.recorder import RecorderOptions

    if args.compare:
        return _stats_compare(args)
    if args.target is None:
        print("repro stats: name a benchmark to run or a run-store/fleet "
              "directory to reconstruct (or use --compare A B)",
              file=sys.stderr)
        return 2
    if os.path.isdir(args.target):
        return _stats_posthoc(args)
    if args.target not in _BENCHMARKS:
        print(f"repro stats: {args.target!r} is neither a benchmark "
              f"({', '.join(_BENCHMARKS)}) nor a run directory",
              file=sys.stderr)
        return 2

    manifest = SessionManifest(
        benchmark=args.target, seed=args.seed, attack=args.attack,
        max_instructions=args.budget, exec_backend=args.backend,
    )
    spec = manifest.build_spec()
    spec = dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, telemetry=True,
                                         profile=args.profile),
    )
    if args.cr_workers > 1:
        # Epoch-parallel shape: record with boundary capture, then replay
        # the epochs concurrently — the tables gain the per-epoch spans
        # and ``parallel.*`` counters.
        from repro.core.parallel import replay_parallel
        from repro.obs.telemetry import TelemetrySnapshot
        from repro.replay.epoch import plan_epoch_boundaries
        from repro.rnr.recorder import Recorder

        recording = Recorder(spec, RecorderOptions(
            max_instructions=args.budget,
            epoch_boundaries=plan_epoch_boundaries(args.budget,
                                                   args.cr_workers,
                                                   oversample=4),
        )).run()
        parallel = replay_parallel(
            spec, recording.log, recording.epoch_plan,
            max_workers=args.cr_workers, resolve_ars=True,
        )
        snapshot = TelemetrySnapshot.merged(
            [recording.telemetry, parallel.telemetry], actor="run",
        )
        headline = (f"{spec.label}: epoch-parallel CR on the "
                    f"{parallel.backend} backend "
                    f"({parallel.epochs} epochs, {parallel.workers} workers)")
    else:
        run = record_and_replay_pipelined(
            spec, RecorderOptions(max_instructions=args.budget),
            backend=args.pipeline_backend,
        )
        snapshot = run.telemetry
        headline = (f"{spec.label}: pipelined on the {run.stats.backend} "
                    f"backend"
                    + (f", recovery: {run.recovery}" if run.recovery else ""))
    if snapshot is None:  # pragma: no cover - telemetry was forced on
        print("no telemetry collected", file=sys.stderr)
        return 1
    return _emit_stats(args, snapshot, headline, label=spec.label)


def _cmd_top(args) -> int:
    from repro.obs.top import TopBoard, watch

    if args.once:
        print(TopBoard(args.root, stale_after_s=args.stale_after).render())
        return 0
    watch(args.root, interval_s=args.interval,
          iterations=args.iterations, stale_after_s=args.stale_after)
    return 0


def _watch_fleet(run, board, total: int, interval_s: float):
    """Run ``run()`` on a worker thread, rendering the board until done."""
    import threading

    holder: dict = {}

    def target():
        try:
            holder["fleet"] = run()
        except BaseException as exc:  # noqa: BLE001 - reraised below
            holder["error"] = exc

    thread = threading.Thread(target=target, name="fleet-watch", daemon=True)
    thread.start()
    while thread.is_alive():
        thread.join(timeout=interval_s)
        print(board.render(total=total))
        print()
    thread.join()
    if "error" in holder:
        raise holder["error"]
    return holder["fleet"]


def _cmd_fleet(args) -> int:
    from repro.core.fleet import FleetSession, run_fleet

    sessions = [
        FleetSession(
            benchmark=args.benchmarks[index % len(args.benchmarks)],
            seed=args.seed + index,
            attack=args.attack,
            max_instructions=args.budget,
            exec_backend=args.backend,
            cr_workers=args.cr_workers,
        )
        for index in range(args.width)
    ]
    board = None
    if args.watch:
        from repro.obs.heartbeat import HeartbeatBoard

        # The supervised (durable) fleet always runs worker processes.
        board = HeartbeatBoard(
            shared=(args.pool == "process" or args.store is not None))

    def run():
        return run_fleet(
            sessions,
            max_workers=args.workers,
            backend=args.pool,
            pipeline=args.pipeline,
            pipeline_backend=args.pipeline_backend,
            session_timeout_s=args.session_timeout,
            max_retries=args.max_retries,
            telemetry=args.telemetry,
            heartbeat=board,
            store_dir=args.store,
            store_fsync=args.fsync,
            heal_deadline_s=args.heal_deadline,
            max_resume_attempts=args.max_resume_attempts,
        )

    if board is not None:
        try:
            fleet = _watch_fleet(run, board, len(sessions),
                                 args.watch_interval)
        finally:
            board.shutdown()
    else:
        fleet = run()
    print(f"fleet of {len(fleet.results)} sessions on the {fleet.backend} "
          f"backend ({fleet.workers} workers): "
          f"{fleet.total_instructions} instructions, "
          f"{fleet.total_alarms} alarms, {fleet.host_seconds:.2f}s")
    for result in fleet.results:
        label = (f"  [{result.index}] {result.benchmark} seed={result.seed}"
                 + (f" attack={result.attack}" if result.attack else ""))
        if not result.ok:
            print(f"{label}: FAILED after {result.attempts} attempt(s) — "
                  f"{result.error}")
            for event in result.recoveries:
                print(f"    heal: {event}")
            continue
        verdicts = ", ".join(result.verdicts) if result.verdicts else "-"
        retried = f", {result.attempts} attempts" if result.attempts > 1 else ""
        print(f"{label}: {result.instructions} instr, "
              f"{result.checkpoints} checkpoints, "
              f"{result.alarms_seen} alarms "
              f"({result.dismissed_underflows} dismissed) -> {verdicts} "
              f"[{result.backend}, {result.host_seconds:.2f}s{retried}, "
              f"digest {result.session_digest[:12]}]")
        for event in result.recoveries:
            print(f"    heal: {event}")
    if args.telemetry and fleet.telemetry is not None:
        print()
        print(fleet.telemetry.tables(), end="")
    failures = fleet.failures
    if failures:
        print(f"{len(failures)} of {len(fleet.results)} sessions failed",
              file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve(args) -> int:
    from repro.errors import ServiceError
    from repro.service import ServiceDaemon

    try:
        daemon = ServiceDaemon(
            args.store,
            endpoint=args.endpoint,
            workers=args.workers,
            queue_limit=args.queue_limit,
            max_resume_attempts=args.max_resume_attempts,
            retry_backoff_s=args.retry_backoff,
            poll_s=args.poll,
            store_fsync=args.fsync,
            once=args.once,
        )
    except ServiceError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    for note in daemon.queue.recovery_notes:
        print(f"note: {note}")
    stats = daemon.queue.stats()
    print(f"serving {args.store} on {daemon.endpoint} "
          f"({args.workers} workers, queue limit {daemon.queue_limit}); "
          f"recovered {stats.total} job(s): {stats.queued} queued, "
          f"{stats.done} done, {stats.quarantined} quarantined")
    daemon.run()
    print("service stopped; queue journal retained")
    return 0


def _service_client(args):
    from repro.service import ServiceClient, default_endpoint

    endpoint = args.endpoint or default_endpoint(args.store)
    return ServiceClient(endpoint, timeout_s=args.timeout)


def _cmd_submit(args) -> int:
    from repro.errors import ServiceError

    spec = {
        "benchmark": args.benchmark,
        "seed": args.seed,
        "attack": args.attack,
        "max_instructions": args.budget,
        "period_s": args.checkpoint_period,
    }
    try:
        response = _service_client(args).submit(
            spec, priority=args.priority, wait_s=args.wait)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    dedup = " (deduplicated)" if response.get("deduplicated") else ""
    print(f"accepted {response['job']} "
          f"(priority {'ar' if response['priority'] == 0 else 'cr'})"
          f"{dedup}")
    return 0


def _render_queue(jobs: list, stats: dict, notes: list) -> None:
    for note in notes:
        print(f"note: {note}")
    print(f"{'job':<12} {'state':<12} {'prio':<5} {'benchmark':<10} "
          f"{'seed':>6} {'attack':<6} {'launches':>8}  detail")
    print("-" * 84)
    for row in jobs:
        detail = ""
        if row.get("result"):
            verdicts = ",".join(row["result"].get("verdicts", [])) or "-"
            detail = (f"verdicts={verdicts} "
                      f"digest={row['result'].get('digest', '')[:12]}")
        elif row.get("error"):
            detail = row["error"][:40]
        print(f"{row['job']:<12} {row['state']:<12} {row['priority']:<5} "
              f"{row['benchmark']:<10} {row['seed']:>6} "
              f"{str(row['attack'] or '-'):<6} {row['launches']:>8}  "
              f"{detail}".rstrip())
    print()
    print(f"{stats['total']} job(s): {stats['queued']} queued, "
          f"{stats['running']} running, {stats['done']} done, "
          f"{stats['quarantined']} quarantined; "
          f"wait p50/p99 {stats['wait_p50_s'] * 1000:.0f}/"
          f"{stats['wait_p99_s'] * 1000:.0f} ms, "
          f"run p50/p99 {stats['run_p50_s'] * 1000:.0f}/"
          f"{stats['run_p99_s'] * 1000:.0f} ms")


def _cmd_queue(args) -> int:
    import json

    from repro.errors import ServiceError

    try:
        response = _service_client(args).queue()
        jobs, stats = response["jobs"], response["stats"]
        notes = response.get("notes", [])
    except ServiceError:
        # No daemon up: the journal on disk is just as authoritative.
        from repro.store import load_job_queue_state

        state = load_job_queue_state(args.store)
        jobs = [job.to_row() for job in state.jobs]
        stats = state.stats().to_json()
        notes = list(state.notes) + ["no daemon reachable; read from disk"]
    if args.json:
        print(json.dumps({"jobs": jobs, "stats": stats, "notes": notes},
                         sort_keys=True))
        return 0
    _render_queue(jobs, stats, notes)
    return 0


def _cmd_drain(args) -> int:
    from repro.errors import ServiceError

    try:
        response = _service_client(args).drain(
            wait=args.wait, stop=args.stop,
            timeout_s=args.timeout if args.wait else None)
    except ServiceError as exc:
        print(f"drain: {exc}", file=sys.stderr)
        return 1
    stats = response["stats"]
    state = "quiet" if response.get("quiet") else "draining"
    print(f"{state}: {stats['queued']} queued, {stats['running']} running, "
          f"{stats['done']} done, {stats['quarantined']} quarantined")
    return 0


def _cmd_gadgets(args) -> int:
    from repro.attacks import GadgetScanner
    from repro.workloads.suite import kernel_for_layout

    kernel = kernel_for_layout()
    scanner = GadgetScanner.over_image(kernel.image)
    gadgets = scanner.scan()
    print(f"{len(scanner.find_rets())} rets, {len(gadgets)} gadgets in the "
          f"kernel image ({len(kernel.image.words)} words)")
    for gadget in gadgets:
        if args.kind and gadget.kind.value != args.kind:
            continue
        owner = kernel.function_at(gadget.addr)
        print(f"  [{gadget.kind.value:<13}] {gadget.disassemble()}"
              + (f"   ({owner})" if owner else ""))
    return 0


def _cmd_bench(args) -> int:
    import pathlib

    results = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    target = results / f"{args.table}.txt"
    if not target.exists():
        available = sorted(p.stem for p in results.glob("*.txt")) \
            if results.exists() else []
        print(f"no saved table {args.table!r}; run `pytest benchmarks/` "
              f"first. available: {available}", file=sys.stderr)
        return 1
    print(target.read_text(), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RnR-Safe: record, replay, and verify security alarms.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="record one benchmark")
    record.add_argument("benchmark", choices=_BENCHMARKS)
    record.add_argument("--seed", type=int, default=2018)
    record.add_argument("--attack", choices=["rop", "jop", "dos"])
    record.add_argument("--budget", type=int, default=3_000_000)
    record.add_argument("--backend", choices=["interp", "trace"],
                        help="execution backend: the reference interpreter "
                             "or the trace-cache translated fast path "
                             "(bit-identical; default: config)")
    record.add_argument("--out", help="session file to write")
    record.add_argument("--framed", action="store_true",
                        help="write the framed (version 2) session body")
    record.add_argument("--sentinel", type=int, metavar="N",
                        help="emit a divergence sentinel every N records")
    record.add_argument("--cr-workers", type=int, default=1, metavar="N",
                        help="plan N roughly-equal epochs while recording "
                             "(captures boundary checkpoints for "
                             "epoch-parallel CR replay)")
    record.add_argument("--store", metavar="DIR",
                        help="journal the recording into a crash-safe run "
                             "store at DIR (resume with `repro resume`)")
    record.add_argument("--fsync", choices=["always", "interval", "never"],
                        default="interval",
                        help="run-store fsync policy (default: interval)")
    record.set_defaults(func=_cmd_record)

    replay = sub.add_parser("replay", help="checkpoint-replay a session")
    replay.add_argument("session", help="session file from `record --out`")
    replay.add_argument("--checkpoint-period", type=float, default=1.0)
    replay.set_defaults(func=_cmd_replay)

    hunt = sub.add_parser("hunt", help="full pipeline with verdicts")
    hunt.add_argument("benchmark", choices=_BENCHMARKS)
    hunt.add_argument("--seed", type=int, default=2018)
    hunt.add_argument("--attack", choices=["rop", "jop", "dos"],
                      default="rop")
    hunt.add_argument("--budget", type=int, default=3_000_000)
    hunt.add_argument("--backend", choices=["interp", "trace"],
                      help="execution backend (bit-identical; "
                           "default: config)")
    hunt.add_argument("--stall", action="store_true",
                      help="stall the recorded VM at the first alarm")
    hunt.add_argument("--pipeline", action="store_true",
                      help="overlap recording and checkpointing replay")
    hunt.add_argument("--pipeline-backend", choices=["thread", "process"],
                      help="pipeline backend (default: config)")
    hunt.add_argument("--cr-workers", type=int, default=1, metavar="N",
                      help="replay the recorded session as N concurrent "
                           "epochs (sequential phases only; ignored with "
                           "--pipeline)")
    hunt.add_argument("--sentinel", type=int, metavar="N",
                      help="emit and verify a divergence sentinel every "
                           "N records")
    hunt.add_argument("--store", metavar="DIR",
                      help="journal the run into a crash-safe run store at "
                           "DIR (implies --pipeline on the thread backend)")
    hunt.add_argument("--fsync", choices=["always", "interval", "never"],
                      default="interval",
                      help="run-store fsync policy (default: interval)")
    hunt.set_defaults(func=_cmd_hunt)

    resume = sub.add_parser(
        "resume", help="continue an interrupted durable run from its store",
    )
    resume.add_argument("store", metavar="DIR",
                        help="run-store directory from `record --store` / "
                             "`hunt --store` / `fleet --store`")
    resume.add_argument("--checkpoint-period", type=float, default=1.0,
                        metavar="S",
                        help="CR checkpoint period in guest seconds; must "
                             "match the interrupted run for bit-identical "
                             "resumption (default: 1.0)")
    resume.add_argument("--cr-workers", type=int, default=1, metavar="N",
                        help="when the journal holds the full recording, "
                             "re-replay it as N concurrent epochs split "
                             "at the store's durable checkpoints")
    resume.add_argument("--fsync", choices=["always", "interval", "never"],
                        help="fsync policy override (default: whatever the "
                             "store was written with)")
    resume.set_defaults(func=_cmd_resume)

    fsck = sub.add_parser(
        "fsck", help="validate a run store and describe its resume plan",
    )
    fsck.add_argument("store", metavar="DIR", help="run-store directory")
    fsck.add_argument("--json", action="store_true",
                      help="print the machine-readable health report "
                           "(canonical JSON) instead of prose")
    fsck.set_defaults(func=_cmd_fsck)

    diff = sub.add_parser(
        "diff", help="compare two recorded runs and pin their first "
                     "divergence (exit 0 parity / 1 diverged / 2 error)",
    )
    diff.add_argument("run_a", metavar="RUN_A",
                      help="session file or run-store directory")
    diff.add_argument("run_b", metavar="RUN_B",
                      help="session file or run-store directory")
    diff.add_argument("--ignore", action="append", metavar="RULE",
                      help="ignore-rule name (repeatable): timestamps, "
                           "entropy, sentinels, end-digest, markers")
    diff.add_argument("--context", type=int, default=3, metavar="N",
                      help="records of surrounding context captured per "
                           "side of a divergence (default: 3)")
    diff.add_argument("--no-bisect", action="store_true",
                      help="skip checkpoint-seeded bisection of state "
                           "divergences (report the sentinel window only)")
    diff.add_argument("--json", action="store_true",
                      help="print the DiffReport as canonical JSON "
                           "instead of the human rendering")
    diff.add_argument("--report", metavar="FILE",
                      help="also write the canonical-JSON DiffReport "
                           "to FILE")
    diff.set_defaults(func=_cmd_diff)

    fleet = sub.add_parser(
        "fleet", help="run many independent sessions across a worker pool",
    )
    fleet.add_argument("benchmarks", nargs="+", choices=_BENCHMARKS,
                       help="benchmarks cycled across the fleet")
    fleet.add_argument("--width", type=int, default=4,
                       help="number of sessions to run")
    fleet.add_argument("--seed", type=int, default=2018,
                       help="base seed; session i uses seed+i")
    fleet.add_argument("--attack", choices=["rop", "jop", "dos"])
    fleet.add_argument("--budget", type=int, default=1_000_000)
    fleet.add_argument("--workers", type=int,
                       help="pool size (default: one per session)")
    fleet.add_argument("--pool", "--pool-backend", choices=["thread",
                                                            "process"],
                       default="process", dest="pool",
                       help="worker pool: thread or process per session")
    fleet.add_argument("--backend", choices=["interp", "trace"],
                       help="execution backend inside every session "
                            "(bit-identical; default: config)")
    fleet.add_argument("--pipeline", action="store_true",
                       help="stream each session through the pipeline")
    fleet.add_argument("--pipeline-backend", choices=["thread", "process"],
                       default="thread")
    fleet.add_argument("--cr-workers", type=int, default=1, metavar="N",
                       help="epoch-parallel CR width inside each session "
                            "(thread-backed; sequential sessions only)")
    fleet.add_argument("--session-timeout", type=float, metavar="S",
                       help="per-session deadline in host seconds; a late "
                            "session becomes a structured failure")
    fleet.add_argument("--max-retries", type=int, metavar="N",
                       help="extra attempts granted to a crashed session "
                            "(default: config)")
    fleet.add_argument("--watch", action="store_true",
                       help="render the live per-session heartbeat board "
                            "while the fleet runs")
    fleet.add_argument("--watch-interval", type=float, default=1.0,
                       metavar="S", help="seconds between board renders")
    fleet.add_argument("--telemetry", action="store_true",
                       help="collect per-session telemetry and print the "
                            "fleet-wide rollup")
    fleet.add_argument("--store", metavar="DIR",
                       help="run the self-healing supervisor: each session "
                            "journals into DIR/session-NNN and a dead or "
                            "wedged worker is resumed from its store")
    fleet.add_argument("--fsync", choices=["always", "interval", "never"],
                       default="interval",
                       help="run-store fsync policy (default: interval)")
    fleet.add_argument("--heal-deadline", type=float, metavar="S",
                       help="heartbeat staleness that triggers a heal "
                            "(default: the stale threshold, 5s)")
    fleet.add_argument("--max-resume-attempts", type=int, metavar="N",
                       help="heals granted per session before it is marked "
                            "failed (default: 2)")
    fleet.set_defaults(func=_cmd_fleet)

    stats = sub.add_parser(
        "stats", help="run one pipelined session with telemetry and "
                      "print per-phase/per-metric tables; give a "
                      "run-store/fleet DIR instead to reconstruct its "
                      "durable telemetry post-hoc",
    )
    stats.add_argument("target", nargs="?", metavar="BENCHMARK|DIR",
                       help="benchmark to run ("
                            + ", ".join(_BENCHMARKS)
                            + ") or a run-store/fleet directory whose "
                              "telemetry.jsonl journals to reconstruct")
    stats.add_argument("--seed", type=int, default=2018)
    stats.add_argument("--attack", choices=["rop", "jop", "dos"])
    stats.add_argument("--budget", type=int, default=1_000_000)
    stats.add_argument("--backend", choices=["interp", "trace"],
                       help="execution backend; translation counters "
                            "surface in the metric tables "
                            "(default: config)")
    stats.add_argument("--pipeline-backend", choices=["thread", "process"],
                       help="pipeline backend (default: config)")
    stats.add_argument("--cr-workers", type=int, default=1, metavar="N",
                       help="run the epoch-parallel CR shape and include "
                            "the per-epoch spans and parallel.* counters")
    stats.add_argument("--prom", action="store_true",
                       help="print Prometheus text exposition instead of "
                            "tables")
    stats.add_argument("--trace", metavar="FILE",
                       help="also write a Chrome trace (load in "
                            "chrome://tracing or Perfetto)")
    stats.add_argument("--profile", action="store_true",
                       help="enable the deterministic guest profiler "
                            "(icount-strided PC samples; bit-transparent)")
    stats.add_argument("--flame", metavar="FILE",
                       help="write the profile as collapsed stacks "
                            "(flamegraph.pl / speedscope input)")
    stats.add_argument("--compare", nargs=2,
                       metavar=("BASELINE", "CANDIDATE"),
                       help="compare two run-store/fleet directories from "
                            "their durable journals; exit 1 on SLO breach")
    stats.add_argument("--slo", metavar="FILE",
                       help="JSON SLO rules for --compare (default: "
                            "*.instr_s may not regress more than 10%%)")
    stats.set_defaults(func=_cmd_stats)

    top = sub.add_parser(
        "top", help="live fleet board fed by the durable telemetry "
                    "journals under a run/fleet directory",
    )
    top.add_argument("root", metavar="DIR",
                     help="run-store directory or fleet store_dir of "
                          "session-NNN stores")
    top.add_argument("--interval", type=float, default=1.0, metavar="S",
                     help="seconds between renders (default: 1.0)")
    top.add_argument("--iterations", type=int, metavar="N",
                     help="stop after N renders (default: until Ctrl-C "
                          "or every session finishes)")
    top.add_argument("--once", action="store_true",
                     help="render the board once and exit")
    top.add_argument("--stale-after", type=float, default=5.0, metavar="S",
                     help="age that flags a session WEDGED? (default: 5.0)")
    top.set_defaults(func=_cmd_top)

    serve = sub.add_parser(
        "serve", help="run the replay-service scheduler daemon on a "
                      "store directory (durable priority queue; survives "
                      "kill -9 with no lost or double-run jobs)",
    )
    serve.add_argument("store", metavar="DIR",
                       help="service store directory (created if missing); "
                            "holds queue.jsonl and one run store per job")
    serve.add_argument("--endpoint", metavar="ADDR",
                       help="unix socket path or host:port to listen on "
                            "(default: DIR/service.sock)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent worker processes (default: 2)")
    serve.add_argument("--queue-limit", type=int, metavar="N",
                       help="queued jobs admitted before submissions are "
                            "rejected with queue-full (default: config)")
    serve.add_argument("--max-resume-attempts", type=int, metavar="N",
                       help="failed launches granted before a job is "
                            "quarantined as poison (default: config)")
    serve.add_argument("--retry-backoff", type=float, metavar="S",
                       help="base backoff between job retries, doubling "
                            "per failure (default: config)")
    serve.add_argument("--poll", type=float, metavar="S",
                       help="scheduler poll interval (default: config)")
    serve.add_argument("--fsync", choices=["always", "interval", "never"],
                       default="interval",
                       help="per-job run-store fsync policy; the queue "
                            "journal itself always fsyncs (default: "
                            "interval)")
    serve.add_argument("--once", action="store_true",
                       help="exit once the queue is empty and idle "
                            "(process recovered work, then stop)")
    serve.set_defaults(func=_cmd_serve)

    def _client_args(command):
        command.add_argument("store", metavar="DIR",
                             help="service store directory of the daemon")
        command.add_argument("--endpoint", metavar="ADDR",
                             help="daemon endpoint (default: "
                                  "DIR/service.sock)")
        command.add_argument("--timeout", type=float, default=30.0,
                             metavar="S", help="request timeout")

    submit = sub.add_parser(
        "submit", help="submit one session to a running service daemon",
    )
    _client_args(submit)
    submit.add_argument("benchmark", choices=_BENCHMARKS)
    submit.add_argument("--seed", type=int, default=2018)
    submit.add_argument("--attack", choices=["rop", "jop", "dos"],
                        help="alarm-bearing submissions take the AR "
                             "priority class and preempt clean work")
    submit.add_argument("--budget", type=int, default=1_000_000)
    submit.add_argument("--checkpoint-period", type=float, default=1.0,
                        metavar="S")
    submit.add_argument("--priority", type=int, choices=[0, 1],
                        help="override the priority class (0 = ar, 1 = cr; "
                             "default: 0 when --attack is set)")
    submit.add_argument("--wait", type=float, default=0.0, metavar="S",
                        help="block up to S seconds re-submitting through "
                             "queue-full backpressure (default: fail fast)")
    submit.set_defaults(func=_cmd_submit)

    queue = sub.add_parser(
        "queue", help="print the service queue (from the daemon, or from "
                      "the on-disk journal when none is reachable)",
    )
    _client_args(queue)
    queue.add_argument("--json", action="store_true",
                       help="machine-readable rows + stats")
    queue.set_defaults(func=_cmd_queue)

    drain = sub.add_parser(
        "drain", help="close admissions on a running daemon; accepted "
                      "work still completes",
    )
    _client_args(drain)
    drain.add_argument("--wait", action="store_true",
                       help="hold until every accepted job has completed")
    drain.add_argument("--stop", action="store_true",
                       help="stop the daemon once drained")
    drain.set_defaults(func=_cmd_drain)

    gadgets = sub.add_parser("gadgets", help="scan the kernel for gadgets")
    gadgets.add_argument("--kind", choices=["pop_reg", "load_indirect",
                                            "call_reg", "ret_only"])
    gadgets.set_defaults(func=_cmd_gadgets)

    bench = sub.add_parser("bench", help="print a regenerated figure table")
    bench.add_argument("table", help="e.g. fig5a_recording_setups")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
