#!/usr/bin/env python
"""The §6 walk-through: mount the kernel ROP, then ask how / who / what.

Reproduces the paper's Section 6 narrative step by step:

* scan the victim kernel binary for gadgets and build the chain;
* deliver it in a network packet; the hijacked return raises a RAS
  misprediction alarm, and — because this run does not stall — the payload
  executes and grants root;
* the checkpointing replayer dismisses the benign underflow alarms and
  hands the rest to alarm replayers;
* the AR confirms the ROP and, frozen at the moment of hijack, yields the
  forensic report answering the paper's three questions.

Run:  python examples/kernel_rop_forensics.py
"""

from repro import (
    APACHE,
    AlarmReplayer,
    CheckpointingReplayer,
    Recorder,
    RecorderOptions,
    build_workload,
    deliver_rop_attack,
)
from repro.analysis import build_attack_report
from repro.attacks import GadgetScanner
from repro.replay import CheckpointingOptions, VerdictKind


def main():
    spec, chain = deliver_rop_attack(build_workload(APACHE))

    print("== step 1: the attacker scans the kernel binary ==")
    scanner = GadgetScanner.over_image(spec.kernel.image)
    print(f"   {len(scanner.find_rets())} ret instructions, "
          f"{len(scanner.scan())} usable gadgets found")
    for gadget in chain.gadgets:
        print("   using:", gadget.disassemble())
    print("   goal:", chain.description)
    print()

    print("== step 2: record the victim while the exploit arrives ==")
    recording = Recorder(
        spec, RecorderOptions(max_instructions=3_000_000),
    ).run()
    uid = recording.machine.memory.read_word(spec.kernel.layout.uid_addr)
    print(f"   recording stopped: {recording.stop_reason}; "
          f"{len(recording.alarms)} alarms logged; UID cell = {uid} "
          f"({'ROOTED' if uid == 0 else 'intact'})")
    print()

    print("== step 3: the checkpointing replayer triages the log ==")
    cr = CheckpointingReplayer(
        spec, recording.log, CheckpointingOptions(period_s=1.0),
    ).run_to_end()
    print(f"   {len(cr.store)} checkpoints; {cr.dismissed_underflows} "
          f"underflow alarms dismissed against evict records; "
          f"{len(cr.pending_alarms)} alarms need an alarm replayer")
    print()

    print("== step 4: the alarm replayer confirms and reconstructs ==")
    hijack = next(alarm for alarm in cr.pending_alarms
                  if alarm.actual == chain.stack_words[0])
    replayer = AlarmReplayer(spec, recording.log, hijack,
                             checkpoint=cr.store.latest_before(hijack.icount),
                             store=cr.store)
    verdict = replayer.analyze()
    if verdict.kind is not VerdictKind.ROP_CONFIRMED:
        # Bounded BackRAS at the checkpoint: escalate to a from-start AR.
        replayer = AlarmReplayer(spec, recording.log, hijack)
        verdict = replayer.analyze()
    assert verdict.kind is VerdictKind.ROP_CONFIRMED
    print(build_attack_report(replayer, verdict, recording=recording).render())


if __name__ == "__main__":
    main()
