#!/usr/bin/env python
"""Quickstart: record a workload, detect a kernel ROP, confirm it via replay.

This is Figure 1 end to end in a dozen lines of API:

1. build the apache-like workload and inject the Figure 10 exploit into
   its network traffic;
2. run the full RnR-Safe deployment: monitored recording, always-on
   checkpointing replay, and need-based alarm replayers;
3. print the framework's report.

Run:  python examples/quickstart.py
"""

from repro import (
    APACHE,
    RecorderOptions,
    RnRSafe,
    RnRSafeOptions,
    build_workload,
    deliver_rop_attack,
)


def main():
    # The victim: an apache-like server that parses network messages in a
    # kernel path with an unchecked copy.  The attacker: one crafted packet.
    spec, chain = deliver_rop_attack(build_workload(APACHE))
    print("attack chain staged by the adversary:")
    for line in chain.disassemble():
        print("   ", line)
    print()

    framework = RnRSafe(
        spec,
        RnRSafeOptions(recorder=RecorderOptions(max_instructions=3_000_000)),
    )
    report = framework.run()

    print(report.summary())
    print()
    for outcome in report.outcomes:
        verdict = outcome.verdict
        print(f"alarm @ pc={outcome.alarm.pc:#x} "
              f"({outcome.alarm.kind.value}): {verdict.kind.value}")
        print(f"    {verdict.explanation}")
        if outcome.response is not None:
            print(f"    response {outcome.response.summary(spec.config)}")
    print()
    attacked = report.attacks
    assert attacked, "the framework must confirm the injected ROP"
    print(f"==> {len(attacked)} attack alarm(s) confirmed, "
          f"{len(report.false_positives)} false positive(s) absorbed by "
          "replay — no hardware shadow stack involved.")


if __name__ == "__main__":
    main()
