#!/usr/bin/env python
"""A tour of §4.1's four false-positive sources and who handles each.

The RAS is an imprecise ROP detector; this example manufactures each
benign misprediction class and shows the division of labour the paper
proposes:

=====================  ====================================
source                 handled by
=====================  ====================================
multithreading         hardware (BackRAS save/restore)
non-procedural return  hardware (Ret/Tar whitelists)
RAS underflow          checkpointing replayer (evict records)
imperfect nesting      alarm replayer (software RAS repair)
=====================  ====================================

Run:  python examples/false_positive_tour.py
"""

import dataclasses

from repro import (
    APACHE,
    MYSQL,
    AlarmReplayer,
    CheckpointingReplayer,
    Recorder,
    RecorderOptions,
    build_workload,
)
from repro.detectors import measure_false_alarm_suppression
from repro.replay import CheckpointingOptions, VerdictKind


def hardware_filters():
    print("== hardware filters: BackRAS and the whitelists ==")
    spec = build_workload(APACHE)
    breakdown = measure_false_alarm_suppression(spec,
                                                max_instructions=2_500_000)
    print(f"   basic design (no filters): {breakdown.unfiltered} kernel "
          "false alarms")
    print(f"   + whitelist: suppresses {breakdown.suppressed_by_whitelist} "
          "(every context-switch completion is a non-procedural return)")
    print(f"   + BackRAS:   suppresses {breakdown.suppressed_by_backras} "
          "(cross-thread RAS pollution)")
    print(f"   remaining for the replayers: {breakdown.passed_to_replayers}")
    print()
    return spec


def underflow_dismissal(spec):
    print("== checkpointing replayer: underflows vs evict records ==")
    recording = Recorder(spec,
                         RecorderOptions(max_instructions=2_500_000)).run()
    cr = CheckpointingReplayer(
        spec, recording.log, CheckpointingOptions(period_s=1.0),
    ).run_to_end()
    print(f"   {len(recording.evicts)} evict records logged by hardware; "
          f"{cr.dismissed_underflows} underflow alarms matched and "
          "dismissed without any alarm replayer")
    print()


def imperfect_nesting():
    print("== alarm replayer: setjmp/longjmp imperfect nesting ==")
    profile = dataclasses.replace(MYSQL, setjmp_every=3)
    spec = build_workload(profile)
    recording = Recorder(spec,
                         RecorderOptions(max_instructions=2_500_000)).run()
    user_base = spec.kernel.layout.user_code_base
    setjmp_alarm = next(a for a in recording.alarms if a.pc >= user_base)
    verdict = AlarmReplayer(spec, recording.log, setjmp_alarm).analyze()
    assert verdict.kind is VerdictKind.FALSE_POSITIVE
    print(f"   alarm at user pc {setjmp_alarm.pc:#x}: {verdict.kind.value}")
    print(f"   {verdict.explanation}")
    print(f"   (expected {verdict.expected_target:#x}, saw "
          f"{verdict.observed_target:#x} — found deeper in the call "
          "history, so the software RAS unwound it)")
    print()


def main():
    spec = hardware_filters()
    underflow_dismissal(spec)
    imperfect_nesting()
    print("every benign class absorbed; zero false negatives by "
          "construction — the RAS cannot miss a hijacked return.")


if __name__ == "__main__":
    main()
