#!/usr/bin/env python
"""RnR-Safe against the defenses of §2.3 and §9, on the same exploit.

Four defenses meet the Figure 10 kernel ROP:

* an inline software shadow stack (precise but >100% overhead);
* coarse-grained "call-preceded" CFI (cheap, flags this particular chain,
  but famously bypassable in general);
* ASLR (breaks a blind chain, falls to one address disclosure);
* RnR-Safe (imprecise 27%-overhead hardware + replay verification).

Run:  python examples/defense_comparison.py
"""

from repro import (
    APACHE,
    NO_REC,
    RADIOSITY,
    Recorder,
    RecorderOptions,
    RnRSafe,
    RnRSafeOptions,
    build_set_root_chain,
    build_workload,
    deliver_rop_attack,
    record_benchmark,
)
from repro.baselines import (
    build_slid_workload,
    chain_survives_slide,
    classify_chain_against_cfi,
    disclose_kernel_slide,
    run_instrumented_shadow_stack,
)


def main():
    spec, chain = deliver_rop_attack(build_workload(APACHE))
    native = record_benchmark(spec, NO_REC, max_instructions=3_000_000)
    native_cycles = native.metrics.total_cycles
    print(f"victim workload: {spec.label}; native run = "
          f"{native_cycles} cycles\n")

    print("== inline software shadow stack (§2.3) ==")
    stats = run_instrumented_shadow_stack(spec, max_instructions=3_000_000,
                                          kernel_only=False)
    slowdown = stats.metrics.total_cycles / native_cycles
    print(f"   detected: {stats.detected_attack} "
          f"({len(stats.violations)} violations)")
    print(f"   cost: {slowdown:.2f}x native — paid on EVERY call/ret, "
          "always\n")

    print("== coarse-grained CFI (call-preceded returns) ==")
    cfi = classify_chain_against_cfi(spec.kernel, chain)
    print(f"   flags this chain: {cfi.detected} "
          f"({len(cfi.rejected_targets)} non-call-preceded hops)")
    print("   caveat: chains built purely from call-preceded gadgets "
          "bypass the policy (Davi et al. 2014)\n")

    print("== ASLR (§9) ==")
    slid_spec, slide = build_slid_workload(RADIOSITY, seed=3)
    blind_chain = build_set_root_chain(build_workload(RADIOSITY).kernel)
    print(f"   kernel slide this boot: {slide} words")
    print(f"   blind chain survives: "
          f"{chain_survives_slide(blind_chain.stack_words, slide)}")
    disclosed = disclose_kernel_slide(slid_spec)
    rebuilt = build_set_root_chain(slid_spec.kernel)
    print(f"   after one address disclosure (slide={disclosed}): the "
          f"attacker rebuilds the chain at {rebuilt.stack_words[0]:#x} "
          "and ROP works again\n")

    print("== RnR-Safe ==")
    report = RnRSafe(
        spec,
        RnRSafeOptions(recorder=RecorderOptions(max_instructions=3_000_000)),
    ).run()
    rec_slowdown = (report.recording.metrics.total_cycles / native_cycles)
    print(f"   recording cost: {rec_slowdown:.2f}x native "
          "(the paper's ~1.27x)")
    print(f"   attacks confirmed by replay: {len(report.attacks)}; "
          f"false positives absorbed: {len(report.false_positives)}")
    print("   the precise check ran off the critical path, on another "
          "machine, only when alarms fired.")


if __name__ == "__main__":
    main()
