#!/usr/bin/env python
"""Checkpoint time travel: §8.4's retention math and §3.2's auditing.

Shows the checkpointing replayer's storage machinery doing the things the
paper sells it for: resuming execution from any retained checkpoint,
recycling old checkpoints without losing the ability to reconstruct, and
replaying a pre-attack window to audit what the system was doing.

Run:  python examples/checkpoint_time_travel.py
"""

from repro import (
    FILEIO,
    DeterministicReplayer,
    Recorder,
    RecorderOptions,
    build_workload,
)
from repro.analysis import audit_window
from repro.core.response import checkpoints_needed
from repro.replay import CheckpointingOptions, CheckpointingReplayer


def main():
    spec = build_workload(FILEIO)
    recording = Recorder(spec,
                         RecorderOptions(max_instructions=3_000_000)).run()
    print(f"recorded {recording.metrics.instructions} instructions, "
          f"{recording.log.total_bytes} log bytes")

    print("\n== checkpoint every 0.5 s, retain a 2 s window ==")
    cr = CheckpointingReplayer(
        spec, recording.log,
        CheckpointingOptions(period_s=0.5, retention_s=2.0, keep_at_least=2),
    ).run_to_end()
    store = cr.store
    print(f"   {len(store)} checkpoints retained, "
          f"{store.recycled} recycled, "
          f"{store.storage_words * 8 / 1024:.0f} KiB of state held")
    for checkpoint in store.all():
        seconds = spec.config.seconds(checkpoint.cycles)
        print(f"   checkpoint {checkpoint.checkpoint_id}: t={seconds:.2f}s, "
              f"icount={checkpoint.icount}, "
              f"{len(checkpoint.pages)} pages, "
              f"{len(checkpoint.disk_blocks)} disk blocks, "
              f"{len(checkpoint.backras)} BackRAS entries")

    print("\n== resume from the middle checkpoint and replay the tail ==")
    middle = store.all()[len(store.all()) // 2]
    resumed = DeterministicReplayer(spec, recording.log.cursor())
    resumed.restore_checkpoint(middle, store)
    result = resumed.run()
    print(f"   resumed at icount {middle.icount}; replay reached the end "
          f"with digest verified = {result.digest_checked}")

    print("\n== audit the window before the last checkpoint (§3.2) ==")
    timeline = audit_window(spec, recording.log,
                            until_icount=store.latest().icount)
    print(timeline.render(limit=12))

    print("\n== the paper's retention rule ==")
    for window, period in ((3.0, 1.0), (3.0, 0.2), (8.0, 1.0)):
        needed = checkpoints_needed(window, period)
        print(f"   response window {window}s at {period}s checkpoints "
              f"-> keep {needed} checkpoints (window/period + 2)")


if __name__ == "__main__":
    main()
