#!/usr/bin/env python
"""Table 1 in action: ROP, JOP, and DOS detectors on one deployment.

RnR-Safe's flexibility claim (§3.2) is that the framework hosts multiple
imprecise detectors at once, each with its own replay-side analyzer.  This
example arms all three against a workload carrying a JOP redirect and a
kernel-spinning DOS, while the RAS-based ROP detector keeps watching.

Run:  python examples/multi_detector.py
"""

from repro import (
    MYSQL,
    Recorder,
    RecorderOptions,
    build_dos_attack_program,
    build_jop_attack_program,
    build_workload,
)
from repro.cpu.exits import RopAlarmKind
from repro.detectors import (
    DosAnalyzer,
    DosWatchdog,
    JopDetector,
    RasRopDetector,
    verify_jop_target,
)


def main():
    spec = build_workload(MYSQL)
    spec = build_jop_attack_program(spec)
    spec = build_dos_attack_program(spec, spin_iterations=12_000)
    print(f"workload: {spec.label} with {len(spec.init_entries)} tasks "
          "(two of them hostile)")

    recorder = Recorder(spec, RecorderOptions(max_instructions=4_000_000))
    for detector in (RasRopDetector(), JopDetector(), DosWatchdog()):
        detector.configure(recorder)
        print(f"  armed detector: {detector.name}")
    recording = recorder.run()
    print(f"recording: {recording.metrics.instructions} instructions, "
          f"{len(recording.alarms) + len(recording.jop_alarms)} alarms")
    print()

    print("== JOP analyzer (function-boundary verification) ==")
    for alarm in recording.jop_alarms:
        verdict = verify_jop_target(spec.kernel, alarm)
        owner = spec.kernel.function_at(alarm.actual)
        print(f"   indirect transfer to {alarm.actual:#x}"
              f"{f' (inside {owner})' if owner else ''}: "
              f"{verdict.kind.value} — {verdict.explanation}")
    print()

    print("== DOS analyzer (who hogged the kernel?) ==")
    dos_alarms = [a for a in recording.alarms
                  if a.kind is RopAlarmKind.DOS]
    for alarm in dos_alarms:
        analysis = DosAnalyzer(sample_every=512).analyze(
            spec, recording.log, alarm,
        )
        print(f"   scheduler starved at instruction {alarm.icount}; "
              f"profile over the window:")
        for function, samples in sorted(analysis.profile.items(),
                                        key=lambda kv: -kv[1])[:4]:
            share = samples / analysis.sampled * 100
            print(f"      {function:<20} {share:5.1f}%")
        print(f"   dominant: {analysis.dominant_function} "
              f"({analysis.dominant_share:.0%}) — "
              f"{'a kernel hog: DOS confirmed' if analysis.is_kernel_hog else 'no single hog'}")
    print()

    rop_alarms = [a for a in recording.alarms
                  if a.kind is not RopAlarmKind.DOS]
    print(f"== RAS ROP detector: {len(rop_alarms)} alarms "
          "(all benign here, absorbed by the usual replay pipeline) ==")


if __name__ == "__main__":
    main()
