#!/usr/bin/env python
"""Zero-day retrospection: "were we ever exploited?" (§3.2, IntroVirt-style).

A fleet keeps its recordings and checkpoints around.  Months later a new
indicator of compromise is published.  Because execution history is
replayable, the question "did this ever happen to us?" has an exact
answer — replay and check, at every retained point in time.

This example also demonstrates the §8.3.1 pipeline story: coupling the
real recording and checkpointing-replay timelines shows the CR keeping
pace (idle slack) and back-pressure bounding the worst-case lag.

Run:  python examples/zero_day_audit.py
"""

from repro import (
    APACHE,
    Recorder,
    RecorderOptions,
    build_workload,
    deliver_rop_attack,
)
from repro.analysis import (
    ops_table_tamper_indicator,
    sweep_for_intrusions,
    uid_zero_indicator,
)
from repro.core.pipeline import couple_pipeline, timelines_from_runs
from repro.replay import CheckpointingOptions, CheckpointingReplayer


def main():
    # An exploited machine and a clean one, both with retained history.
    attacked_spec, chain = deliver_rop_attack(build_workload(APACHE))
    clean_spec = build_workload(APACHE)
    indicators = {
        "uid_zero": uid_zero_indicator,
        "ops_table_tamper": ops_table_tamper_indicator(attacked_spec),
    }

    for label, spec in (("victim", attacked_spec), ("clean", clean_spec)):
        recording = Recorder(
            spec, RecorderOptions(max_instructions=3_000_000),
        ).run()
        cr = CheckpointingReplayer(
            spec, recording.log, CheckpointingOptions(period_s=0.5),
        ).run_to_end()
        print(f"== {label}: sweeping {len(cr.store)} retained checkpoints "
              "with today's new indicators ==")
        sweep = sweep_for_intrusions(spec, recording.log, indicators,
                                     store=cr.store)
        if sweep.compromised:
            for hit in sweep.hits:
                print(f"   COMPROMISED ({hit.name}): clean through "
                      f"instruction {hit.clean_until_icount}, indicator "
                      f"present by {hit.first_seen_icount} — replay that "
                      "window for the full story")
        else:
            print(f"   clean at all {len(sweep.probes)} probe points")
        print()

        if label == "victim":
            print("== pipeline coupling (§8.3.1) ==")
            production, consumption = timelines_from_runs(recording, cr)
            relaxed = couple_pipeline(production, consumption,
                                      utilization=0.7)
            print(f"   at 70% utilization the CR's worst lag is "
                  f"{relaxed.max_lag_seconds(spec.config):.2f}s and it "
                  "needs no throttling")
            bound = spec.config.cycles(0.5)
            tight = couple_pipeline(production, consumption,
                                    utilization=1.0,
                                    backpressure_lag_cycles=bound)
            print(f"   at 100% utilization, back-pressure caps the lag at "
                  f"0.50s by stalling recording for "
                  f"{spec.config.seconds(tight.backpressure_cycles):.2f}s "
                  "total")
            print()


if __name__ == "__main__":
    main()
