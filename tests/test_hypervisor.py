"""Tests for the hypervisor layer: VMCS, interposition, machine assembly."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.cpu import Cpu, ExitControls
from repro.cpu.state import CpuState, unpack_flags
from repro.errors import HypervisorError, KernelBuildError
from repro.hypervisor import (
    BackRasStore,
    ContextSwitchInterposer,
    GuestMachine,
    Vmcs,
)
from repro.hypervisor.interpose import LIFECYCLE_TID_REG, SWITCH_SP_REG
from repro.kernel.layout import TaskField, TaskState
from repro.memory import PERM_READ, PERM_WRITE, PhysicalMemory

from tests.conftest import small_workload


def make_vmcs(capacity=4, jop_capacity=8):
    memory = PhysicalMemory(page_size=64)
    memory.map_range(0, 64, PERM_READ | PERM_WRITE)
    cpu = Cpu(memory, DEFAULT_CONFIG)
    return cpu, Vmcs(cpu, tar_whitelist_capacity=capacity,
                     jop_table_capacity=jop_capacity)


class TestVmcs:
    def test_whitelist_programming(self):
        cpu, vmcs = make_vmcs()
        vmcs.set_ret_whitelist(0x100)
        vmcs.set_tar_whitelist({1, 2, 3})
        assert cpu.ret_whitelist == 0x100
        assert cpu.tar_whitelist == {1, 2, 3}

    def test_tar_whitelist_capacity_enforced(self):
        cpu, vmcs = make_vmcs(capacity=2)
        with pytest.raises(HypervisorError):
            vmcs.set_tar_whitelist({1, 2, 3})

    def test_jop_table_capacity_enforced(self):
        cpu, vmcs = make_vmcs(jop_capacity=1)
        with pytest.raises(HypervisorError):
            vmcs.set_jop_table([(0, 1), (2, 3)])

    def test_ras_microcode_round_trip(self):
        cpu, vmcs = make_vmcs()
        cpu.ras.push(10)
        cpu.ras.push(20)
        snapshot = vmcs.dump_ras()
        vmcs.clear_ras()
        assert cpu.ras.empty
        vmcs.load_ras(snapshot)
        assert cpu.ras.pop() == 20

    def test_guest_register_view(self):
        cpu, vmcs = make_vmcs()
        cpu.regs[4] = 0xABC
        cpu.pc = 0x55
        assert vmcs.guest_reg(4) == 0xABC
        assert vmcs.guest_pc == 0x55
        assert not vmcs.guest_user_mode


class TestBackRasStore:
    def test_save_load_round_trip(self):
        store = BackRasStore()
        store.save(3, (1, 2, 3))
        assert store.load(3) == (1, 2, 3)

    def test_unknown_thread_loads_empty(self):
        store = BackRasStore()
        assert store.load(9) == ()

    def test_recycle_clears_history(self):
        """§5.2.2: a reused thread ID must never inherit stale entries."""
        store = BackRasStore()
        store.save(5, (0xDEAD,))
        store.recycle(5)
        store.allocate(5)
        assert store.load(5) == ()

    def test_traffic_accounting(self):
        store = BackRasStore()
        store.save(1, (1, 2))
        store.load(1)
        assert store.saves == 1
        assert store.restores == 1

    def test_bytes_moved(self):
        store = BackRasStore()
        store.save(1, (1, 2, 3))
        assert store.bytes_moved == (3 + 1) * 8

    def test_snapshot_is_a_copy(self):
        store = BackRasStore()
        store.save(1, (9,))
        snapshot = store.snapshot()
        store.recycle(1)
        assert snapshot == {1: (9,)}


class TestInterposer:
    def _build(self, manage_backras=True):
        spec = small_workload("radiosity")
        machine = GuestMachine(spec, ExitControls(), with_world=False)
        interposer = ContextSwitchInterposer(
            kernel=spec.kernel, vmcs=machine.vmcs, memory=machine.memory,
            manage_backras=manage_backras,
        )
        return spec, machine, interposer

    def _install_task(self, spec, machine, tid):
        layout = spec.kernel.layout
        base, top = layout.stack_region(tid)
        struct = layout.task_struct_addr(tid)
        machine.memory.write_word(struct + TaskField.TID, tid)
        machine.memory.write_word(struct + TaskField.STATE,
                                  int(TaskState.READY))
        machine.memory.write_word(struct + TaskField.STACK_BASE, base)
        machine.memory.write_word(struct + TaskField.STACK_TOP, top)
        return top - 4

    def test_breakpoint_set(self):
        spec, machine, interposer = self._build()
        points = interposer.breakpoints()
        assert spec.kernel.switch_sp_pc in points
        assert spec.kernel.task_create_pc in points
        assert spec.kernel.task_exit_pc in points

    def test_switch_swaps_backras(self):
        spec, machine, interposer = self._build()
        sp_a = self._install_task(spec, machine, 1)
        sp_b = self._install_task(spec, machine, 2)
        cpu = machine.cpu
        # Switch to thread 1 with some RAS content.
        cpu.regs[SWITCH_SP_REG] = sp_a
        interposer.on_breakpoint(spec.kernel.switch_sp_pc)
        cpu.ras.push(0x111)
        # Switch to thread 2: thread 1's entry must be saved away.
        cpu.regs[SWITCH_SP_REG] = sp_b
        old, new = interposer.on_breakpoint(spec.kernel.switch_sp_pc)
        assert (old, new) == (1, 2)
        assert cpu.ras.empty
        assert interposer.backras.load(1) == (0x111,)
        # And restored when thread 1 comes back.
        cpu.regs[SWITCH_SP_REG] = sp_a
        interposer.on_breakpoint(spec.kernel.switch_sp_pc)
        assert cpu.ras.peek() == 0x111

    def test_lifecycle_hooks_fire(self):
        spec, machine, interposer = self._build()
        created, destroyed = [], []
        interposer.thread_created_hook = created.append
        interposer.thread_destroyed_hook = destroyed.append
        machine.cpu.regs[LIFECYCLE_TID_REG] = 6
        interposer.on_breakpoint(spec.kernel.task_create_pc)
        interposer.on_breakpoint(spec.kernel.task_exit_pc)
        assert created == [6]
        assert destroyed == [6]

    def test_unknown_breakpoint_rejected(self):
        spec, machine, interposer = self._build()
        with pytest.raises(HypervisorError):
            interposer.on_breakpoint(0xFFFF)

    def test_switch_to_unknown_stack_rejected(self):
        spec, machine, interposer = self._build()
        machine.cpu.regs[SWITCH_SP_REG] = 0x3  # nobody's stack
        with pytest.raises(HypervisorError):
            interposer.on_breakpoint(spec.kernel.switch_sp_pc)

    def test_manage_backras_off_still_tracks_tid(self):
        spec, machine, interposer = self._build(manage_backras=False)
        sp_a = self._install_task(spec, machine, 1)
        machine.cpu.ras.push(7)
        machine.cpu.regs[SWITCH_SP_REG] = sp_a
        interposer.on_breakpoint(spec.kernel.switch_sp_pc)
        assert interposer.current_tid == 1
        # RAS untouched: the feature is off (RecNoRAS semantics).
        assert machine.cpu.ras.peek() == 7
        assert interposer.backras.entries == {}


class TestGuestMachine:
    def test_construction_maps_all_regions(self):
        spec = small_workload("mysql")
        machine = GuestMachine(spec, ExitControls(), with_world=True)
        layout = spec.kernel.layout
        memory = machine.memory
        for addr in (layout.kernel_code_base, layout.kdata_base,
                     layout.task_table, layout.nic_ring,
                     layout.stacks_base, layout.user_code_base,
                     layout.user_data_base):
            assert memory.is_mapped(addr), hex(addr)

    def test_kernel_loaded_at_base(self):
        spec = small_workload("mysql")
        machine = GuestMachine(spec, ExitControls(), with_world=False)
        first_word = machine.memory.read_word(spec.kernel.image.base)
        assert first_word == spec.kernel.image.words[0]

    def test_init_table_written(self):
        spec = small_workload("mysql")
        machine = GuestMachine(spec, ExitControls(), with_world=False)
        table = spec.kernel.layout.init_table_addr
        assert machine.memory.read_word(table) == len(spec.init_entries)
        for index, entry in enumerate(spec.init_entries):
            assert machine.memory.read_word(table + 1 + index) == entry

    def test_replay_machine_has_no_world(self):
        spec = small_workload("mysql")
        machine = GuestMachine(spec, ExitControls(), with_world=False)
        assert machine.world is None
        assert machine.timer is None

    def test_charge_advances_time(self):
        from repro.perf.account import Category

        spec = small_workload("radiosity")
        machine = GuestMachine(spec, ExitControls(), with_world=False)
        before = machine.now
        machine.charge(Category.DEVICE, 1234)
        assert machine.now == before + 1234

    def test_state_digest_is_stable(self):
        spec = small_workload("radiosity")
        first = GuestMachine(spec, ExitControls(), with_world=False)
        second = GuestMachine(spec, ExitControls(), with_world=False)
        assert first.state_digest() == second.state_digest()

    def test_state_digest_sees_memory_changes(self):
        spec = small_workload("radiosity")
        machine = GuestMachine(spec, ExitControls(), with_world=False)
        baseline = machine.state_digest()
        machine.memory.write_word(spec.kernel.layout.uid_addr, 42)
        assert machine.state_digest() != baseline

    def test_too_many_init_tasks_rejected(self):
        import dataclasses

        spec = small_workload("mysql")
        bogus = dataclasses.replace(
            spec, init_entries=tuple(range(spec.kernel.layout.
                                           init_table_entries + 1)),
        )
        with pytest.raises(KernelBuildError):
            GuestMachine(bogus, ExitControls(), with_world=False)


class TestCpuState:
    def test_flags_pack_unpack_round_trip(self):
        state = CpuState(regs=tuple(range(16)), pc=5, zero=True,
                         negative=False, user=True, int_enabled=True,
                         icount=9, halted=False)
        flags = unpack_flags(state.pack_flags())
        assert flags == {"zero": True, "negative": False, "user": True,
                         "int_enabled": True}

    def test_wrong_register_count_rejected(self):
        with pytest.raises(ValueError):
            CpuState(regs=(0,) * 3, pc=0, zero=False, negative=False,
                     user=False, int_enabled=False, icount=0, halted=False)
