"""Deterministic guest profiler: observe everything, perturb nothing.

The contracts pinned here:

* **Bit transparency** — a run with ``config.profile`` on produces
  byte-identical log bytes, checkpoints, final CPU state, and verdicts
  to the same run with it off.  The profiler reaches sampling points by
  capping ``cpu.run`` batches, and batch-schedule invariance (pinned by
  ``test_backend_equivalence``) makes that free.
* **Determinism** — sampling is icount-strided on a global grid, so the
  recorder and the checkpointing replayer capture the *same* sample
  stream (same icounts, same PCs) for the same execution, and an
  epoch-parallel replay captures the same stream as a sequential one no
  matter which epoch finishes first.
* **Attribution** — samples symbolize to kernel functions / user pages,
  decode to opcodes, and export as collapsed stacks a flame-graph tool
  accepts.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.parallel import record_and_replay_pipelined, replay_parallel
from repro.obs import GuestProfiler, ProfileSnapshot
from repro.replay.checkpointing import CheckpointingOptions
from repro.replay.epoch import plan_epoch_boundaries
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import build_workload, profile_by_name

BUDGET = 40_000
OPTIONS = RecorderOptions(max_instructions=BUDGET)
CR = CheckpointingOptions(period_s=0.2)
STRIDE = 2_048


def _spec(profile: bool = False, stride: int = STRIDE):
    spec = build_workload(profile_by_name("apache"))
    if profile:
        spec = dataclasses.replace(
            spec, config=dataclasses.replace(spec.config, profile=True,
                                             profile_stride=stride),
        )
    return spec


def _run(spec):
    return record_and_replay_pipelined(
        spec, OPTIONS, CR, backend="thread", frame_records=8, queue_depth=4,
    )


def _verdict_key(verdict):
    return (verdict.kind, verdict.benign_cause, verdict.alarm.icount,
            verdict.alarm.kind, verdict.alarm.tid)


def _stream(profile):
    """The comparable part of a sample stream: (icount, pc) pairs."""
    return [(sample[0], sample[1]) for sample in profile.samples]


@pytest.fixture(scope="module")
def baseline():
    return _run(_spec())


@pytest.fixture(scope="module")
def profiled():
    return _run(_spec(profile=True))


# ----------------------------------------------------------------------
# bit transparency
# ----------------------------------------------------------------------


class TestBitTransparency:
    def test_log_bytes_identical(self, baseline, profiled):
        assert (baseline.recording.log.to_bytes()
                == profiled.recording.log.to_bytes())

    def test_final_cpu_state_identical(self, baseline, profiled):
        assert baseline.final_cpu_state == profiled.final_cpu_state

    def test_checkpoints_identical(self, baseline, profiled):
        base = [(c.icount, c.cycles)
                for c in baseline.checkpointing.store.all()]
        prof = [(c.icount, c.cycles)
                for c in profiled.checkpointing.store.all()]
        assert base == prof

    def test_verdicts_identical(self, baseline, profiled):
        assert ([_verdict_key(v) for v in baseline.resolution.verdicts]
                == [_verdict_key(v) for v in profiled.resolution.verdicts])

    def test_profile_off_run_carries_no_profile(self, baseline):
        assert baseline.telemetry is None

    def test_for_config_is_a_nil_sink_when_off(self):
        assert GuestProfiler.for_config(_spec().config, "record") is None


# ----------------------------------------------------------------------
# determinism: record == replay, parallel == sequential
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_profile_rides_the_run_telemetry(self, profiled):
        # config.profile implies telemetry: the snapshot exists and
        # carries a non-empty profile even though config.telemetry is off.
        assert profiled.telemetry is not None
        assert profiled.telemetry.profile is not None
        assert profiled.telemetry.profile.sample_count > 0

    def test_record_and_replay_capture_the_same_stream(self, profiled):
        record = profiled.recording.telemetry.profile
        replay = profiled.checkpointing.telemetry.profile
        assert record.sample_count == replay.sample_count > 0
        assert _stream(record) == _stream(replay)

    def test_samples_land_exactly_on_the_stride_grid(self, profiled):
        profile = profiled.recording.telemetry.profile
        icounts = [sample[0] for sample in profile.samples]
        assert icounts == sorted(icounts)
        assert all(icount % STRIDE == 0 for icount in icounts)
        # The grid is dense: every grid point inside the run is sampled
        # exactly once, starting at icount 0.
        last = icounts[-1]
        assert icounts == list(range(0, last + 1, STRIDE))

    def test_epoch_parallel_equals_sequential(self, profiled):
        spec = _spec(profile=True)
        recording = Recorder(spec, RecorderOptions(
            max_instructions=BUDGET,
            epoch_boundaries=plan_epoch_boundaries(BUDGET, 3, oversample=4),
        )).run()
        parallel = replay_parallel(
            spec, recording.log, recording.epoch_plan,
            max_workers=3, resolve_ars=False,
        )
        assert parallel.epochs > 1
        sequential = profiled.checkpointing.telemetry.profile
        assert (_stream(parallel.telemetry.profile)
                == _stream(sequential))


# ----------------------------------------------------------------------
# merge semantics (out-of-order epoch completion)
# ----------------------------------------------------------------------


def _snapshot(actor, samples):
    return ProfileSnapshot(
        actor=actor, stride=STRIDE,
        samples=tuple(samples),
        stacks={f"{actor};x": len(samples)},
        functions={"x": len(samples)},
        opcodes={"nop": len(samples)},
        pages={0x10: len(samples)},
    )


class TestMerge:
    def test_merge_is_input_order_independent(self):
        # Epoch workers complete in any order; the merged stream must be
        # icount-sorted either way — this is the out-of-order regression
        # test for replay_parallel / pipelined stitching.
        early = _snapshot("cr", [(0, 100, 0, 0), (2048, 104, 0, 0)])
        late = _snapshot("cr", [(4096, 108, 0, 0), (6144, 112, 0, 0)])
        forward = ProfileSnapshot.merged([early, late], actor="cr")
        backward = ProfileSnapshot.merged([late, early], actor="cr")
        assert forward.samples == backward.samples
        assert [s[0] for s in forward.samples] == [0, 2048, 4096, 6144]
        assert forward.stacks == backward.stacks
        assert forward.sample_count == 4

    def test_merge_rejects_an_unsorted_input(self):
        scrambled = _snapshot("cr", [(2048, 104, 0, 0), (0, 100, 0, 0)])
        with pytest.raises(ValueError):
            ProfileSnapshot.merged([scrambled], actor="cr")

    def test_merge_sums_attribution_tables(self):
        left = _snapshot("cr", [(0, 100, 0, 0)])
        right = _snapshot("cr", [(2048, 104, 0, 0)])
        merged = ProfileSnapshot.merged([left, right], actor="cr")
        assert merged.functions == {"x": 2}
        assert merged.opcodes == {"nop": 2}
        assert merged.pages == {0x10: 2}


# ----------------------------------------------------------------------
# grid arithmetic
# ----------------------------------------------------------------------


class TestGrid:
    def test_fresh_start_samples_icount_zero(self):
        profiler = GuestProfiler("record", STRIDE)
        assert profiler.next_due == 0

    def test_reseed_is_strictly_after_the_restore_point(self):
        # An epoch worker restored exactly on a grid point must NOT
        # resample it: the previous epoch owned that sample.
        profiler = GuestProfiler("cr", STRIDE)
        profiler.reseed(2 * STRIDE)
        assert profiler.next_due == 3 * STRIDE
        profiler.reseed(2 * STRIDE + 1)
        assert profiler.next_due == 3 * STRIDE

    def test_cap_batch_stops_at_the_next_grid_point(self):
        profiler = GuestProfiler("record", STRIDE)
        profiler.next_due = STRIDE
        assert profiler.cap_batch(10_000, STRIDE - 5) == 5
        assert profiler.cap_batch(3, STRIDE - 5) == 3
        # Sitting exactly on a due point, the cap reaches to the next one.
        assert profiler.cap_batch(10_000, STRIDE) == STRIDE


# ----------------------------------------------------------------------
# attribution and export
# ----------------------------------------------------------------------


class TestExport:
    def test_collapsed_stacks_are_flamegraph_input(self, profiled):
        profile = profiled.telemetry.profile
        text = profile.collapsed_stacks()
        total = 0
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert ";" in stack  # actor;task;frame at minimum
            total += int(count)
        assert total == profile.sample_count

    def test_samples_symbolize_to_kernel_or_user_frames(self, profiled):
        profile = profiled.telemetry.profile
        assert profile.functions
        assert all(frame.startswith(("kernel;", "user;"))
                   for frame in profile.functions)

    def test_opcode_and_page_heat_account_every_sample(self, profiled):
        profile = profiled.telemetry.profile
        assert sum(profile.pages.values()) == profile.sample_count
        # Opcodes may miss samples whose PC page was unmapped, never gain.
        assert sum(profile.opcodes.values()) <= profile.sample_count

    def test_json_roundtrip_preserves_everything(self, profiled):
        profile = profiled.telemetry.profile
        clone = ProfileSnapshot.from_json(profile.to_json())
        assert clone.samples == profile.samples
        assert clone.stacks == profile.stacks
        assert clone.functions == profile.functions
        assert clone.opcodes == profile.opcodes
        assert clone.pages == profile.pages
        assert clone.stride == profile.stride
