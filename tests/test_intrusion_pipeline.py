"""Tests for the intrusion sweep, back-pressure pipeline, and W⊕X demo."""

import pytest

from repro.analysis.intrusion import (
    ops_table_tamper_indicator,
    sweep_for_intrusions,
    uid_zero_indicator,
)
from repro.attacks.code_injection import (
    build_shellcode,
    deliver_injection_attack,
)
from repro.core.pipeline import couple_pipeline, timelines_from_runs
from repro.errors import MemoryError_
from repro.memory import PERM_EXEC, PERM_READ, PERM_WRITE, PhysicalMemory
from repro.replay import CheckpointingOptions, CheckpointingReplayer
from repro.rnr.recorder import Recorder, RecorderOptions

from tests.conftest import cached_attack_recording, cached_recording, small_workload


class TestIntrusionSweep:
    def test_attack_run_flags_uid_indicator(self):
        spec, chain, run = cached_attack_recording()
        sweep = sweep_for_intrusions(
            spec, run.log, {"uid_zero": uid_zero_indicator},
        )
        assert sweep.compromised
        window = sweep.window_for("uid_zero")
        assert window is not None
        clean_until, first_seen = window
        assert clean_until < first_seen

    def test_benign_run_is_clean(self):
        spec, run = cached_recording("mysql")
        sweep = sweep_for_intrusions(
            spec, run.log,
            {"uid_zero": uid_zero_indicator,
             "ops_tamper": ops_table_tamper_indicator(spec)},
        )
        assert not sweep.compromised
        assert len(sweep.probes) >= 2

    def test_sweep_over_checkpoints(self):
        """With retained checkpoints the probes are reconstruction-only
        (no tail re-execution per probe) and still find the compromise."""
        spec, chain, run = cached_attack_recording()
        cr = CheckpointingReplayer(
            spec, run.log, CheckpointingOptions(period_s=0.5),
        ).run_to_end()
        sweep = sweep_for_intrusions(
            spec, run.log, {"uid_zero": uid_zero_indicator}, store=cr.store,
        )
        assert sweep.compromised
        assert len(sweep.probes) == len(cr.store) + 1  # checkpoints + end

    def test_jop_foothold_detected_by_ops_indicator(self):
        from repro.attacks import build_jop_attack_program

        spec = build_jop_attack_program(small_workload("make"))
        run = Recorder(spec,
                       RecorderOptions(max_instructions=2_500_000)).run()
        sweep = sweep_for_intrusions(
            spec, run.log, {"ops_tamper": ops_table_tamper_indicator(spec)},
        )
        assert sweep.compromised

    def test_window_narrows_with_more_probes(self):
        spec, chain, run = cached_attack_recording()
        coarse = sweep_for_intrusions(
            spec, run.log, {"uid": uid_zero_indicator}, probe_every=120_000,
        )
        fine = sweep_for_intrusions(
            spec, run.log, {"uid": uid_zero_indicator}, probe_every=20_000,
        )
        coarse_window = coarse.window_for("uid")
        fine_window = fine.window_for("uid")
        coarse_span = coarse_window[1] - max(0, coarse_window[0])
        fine_span = fine_window[1] - max(0, fine_window[0])
        assert fine_span <= coarse_span


class TestBackPressure:
    def test_idle_slack_keeps_the_lag_bounded(self):
        """A CR that is 40% slower per record still keeps pace when the
        recorded machine is only 60% utilized — the paper's 'rarely 100%
        utilized' argument.  The lag never accumulates past the cost of
        consuming one record."""
        production = [1000 * i for i in range(1, 11)]
        consumption = [1400 * i for i in range(1, 11)]
        result = couple_pipeline(production, consumption, utilization=0.6)
        assert result.final_lag_cycles <= 1400  # bounded, not growing
        assert result.max_lag_cycles <= 1400
        assert not result.throttled

    def test_lag_grows_without_slack(self):
        production = [1000 * i for i in range(1, 11)]
        consumption = [1500 * i for i in range(1, 11)]
        result = couple_pipeline(production, consumption, utilization=1.0)
        assert result.final_lag_cycles > 0
        assert result.max_lag_cycles >= result.final_lag_cycles

    def test_backpressure_bounds_the_lag(self):
        production = [1000 * i for i in range(1, 21)]
        consumption = [1600 * i for i in range(1, 21)]
        unbounded = couple_pipeline(production, consumption,
                                    utilization=1.0)
        bounded = couple_pipeline(production, consumption, utilization=1.0,
                                  backpressure_lag_cycles=2000)
        assert unbounded.max_lag_cycles > 2000
        assert bounded.max_lag_cycles <= 2000
        assert bounded.throttled
        assert bounded.backpressure_cycles > 0

    def test_real_run_timelines(self):
        """Couple an actual recording with its actual CR run."""
        spec, chain, run = cached_attack_recording()
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions()).run_to_end()
        production, consumption = timelines_from_runs(run, cr)
        assert len(production) == len(consumption) >= 1
        result = couple_pipeline(production, consumption, utilization=0.7)
        assert result.max_lag_cycles >= 0
        throttled = couple_pipeline(
            production, consumption, utilization=1.0,
            backpressure_lag_cycles=spec.config.cycles(0.5),
        )
        assert throttled.max_lag_cycles <= spec.config.cycles(0.5)

    def test_mismatched_timelines_rejected(self):
        with pytest.raises(ValueError):
            couple_pipeline([1, 2], [1])

    def test_bad_utilization_rejected(self):
        with pytest.raises(ValueError):
            couple_pipeline([1], [1], utilization=0.0)


class TestCodeInjectionIsDead:
    def test_wx_refuses_writable_executable_pages(self):
        memory = PhysicalMemory(page_size=64)
        with pytest.raises(MemoryError_):
            memory.map_range(0, 64, PERM_READ | PERM_WRITE | PERM_EXEC)

    def test_injection_attack_fails_but_still_alarms(self):
        """Appendix A's motivation, measured: the shellcode lands in a
        writable page, the hijacked return still trips the RAS detector,
        the fetch from the non-executable page faults, the kernel kills
        the thread — and the UID cell is untouched."""
        attack = deliver_injection_attack(small_workload("apache"))
        run = Recorder(
            attack.spec, RecorderOptions(max_instructions=2_500_000),
        ).run()
        uid = run.machine.memory.read_word(
            attack.spec.kernel.layout.uid_addr,
        )
        assert uid == 1000  # injection achieved nothing
        assert any(alarm.actual == attack.shellcode_addr
                   for alarm in run.alarms)  # but it did not go unnoticed

    def test_shellcode_would_have_worked(self):
        """Sanity: the shellcode is real code — the same words executed
        from an *executable* page do zero the UID cell."""
        from repro.isa import Asm
        from tests.conftest import build_machine, run_until_exit

        spec = small_workload("radiosity")
        shellcode = build_shellcode(spec.kernel)
        asm = Asm(base=0x100)
        asm.li(1, 0x3000 + 5)   # pretend UID cell in the data page
        asm.hlt()
        cpu = build_machine(asm)
        # Execute the shellcode's semantics directly: decode and verify.
        from repro.isa import decode, Opcode

        ops = [decode(word).op for word in shellcode]
        assert ops == [Opcode.LI, Opcode.LI, Opcode.ST, Opcode.RET]

    def test_injection_run_replays_deterministically(self):
        from repro.replay.base import DeterministicReplayer

        attack = deliver_injection_attack(small_workload("apache"))
        run = Recorder(
            attack.spec, RecorderOptions(max_instructions=2_500_000),
        ).run()
        result = DeterministicReplayer(attack.spec, run.log.cursor()).run()
        assert result.reached_end
        assert result.digest_checked
