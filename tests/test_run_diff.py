"""Run-diff forensics: the aligned walk, ignore rules, bisection, CLI.

Three layers of assurance:

* unit tests over synthetic record streams pin the walk's two-track
  semantics (input vs attestation divergences, length mismatches,
  ignore-rule masking);
* a differential-fuzzing property mutates exactly one record of a real
  recording through :class:`~repro.faults.plan.FaultPlan`'s
  ``PERTURB_RECORD`` and demands the diff pin exactly that record —
  position, icount, and payload — with no false divergence on
  byte-identical or ignore-rule-only deltas;
* the checkpoint-seeded bisection acceptance test corrupts machine state
  at a synthetic mid-window instruction and demands the exact icount
  back, using only run-store checkpoints (every probe seed > 0), under
  both execution backends.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import shutil

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cli import main as cli_main
from repro.diffing import (
    IgnoreRuleSet,
    ReplayProbe,
    RunSource,
    bisect_window,
    diff_logs,
    diff_runs,
    resolve_rules,
)
from repro.errors import LogError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.replay import CheckpointingOptions, CheckpointingReplayer
from repro.rnr.log import InputLog, StreamingLogWriter
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.records import (
    EndRecord,
    InterruptRecord,
    MmioReadRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    SentinelRecord,
    is_async_record,
)
from repro.rnr.serialize import parse_frame
from repro.rnr.session import SessionManifest, save_session


# ---------------------------------------------------------------------------
# synthetic streams: walk + ignore-rule semantics
# ---------------------------------------------------------------------------

def _stream():
    return [
        RdtscRecord(value=111),
        InterruptRecord(icount=100, vector=3),
        SentinelRecord(icount=150, digest=0xAA),
        PioInRecord(port=1, value=7),
        RdrandRecord(value=42),
        SentinelRecord(icount=300, digest=0xBB),
        EndRecord(icount=400, digest=5),
    ]


def test_identical_streams_have_no_divergence():
    result = diff_logs(iter(_stream()), iter(_stream()))
    assert result.divergence is None
    assert result.compared == 7
    assert result.attestations_matched == 3
    assert result.last_attested_icount == 400


def test_input_divergence_pins_position_and_icount():
    mutated = _stream()
    mutated[3] = PioInRecord(port=1, value=8)
    result = diff_logs(iter(_stream()), iter(mutated))
    div = result.divergence
    assert div is not None and div.kind == "input"
    assert div.position_a == div.position_b == 3
    # The icount context at record 3 is the last async record's icount.
    assert div.icount == 150
    assert div.payload_a["value"] == 7 and div.payload_b["value"] == 8
    assert div.window is None


def test_sentinel_mismatch_is_a_state_divergence_with_window():
    mutated = _stream()
    mutated[5] = SentinelRecord(icount=300, digest=0xCC)
    result = diff_logs(iter(_stream()), iter(mutated))
    div = result.divergence
    assert div is not None and div.kind == "state"
    assert div.icount == 300
    # Bracketed since the last *matching* attestation at icount 150.
    assert div.window == (150, 300)


def test_end_digest_mismatch_is_a_state_divergence():
    mutated = _stream()
    mutated[6] = EndRecord(icount=400, digest=6)
    div = diff_logs(iter(_stream()), iter(mutated)).divergence
    assert div is not None and div.kind == "state"
    assert div.window == (300, 400)


def test_length_mismatch_reports_the_longer_side():
    div = diff_logs(iter(_stream()), iter(_stream()[:4])).divergence
    assert div is not None and div.kind == "length"
    assert div.position_b is None and div.position_a == 4
    assert div.payload_b is None


def test_context_excludes_the_diverging_record():
    mutated = _stream()
    mutated[5] = SentinelRecord(icount=300, digest=0xCC)
    div = diff_logs(iter(_stream()), iter(mutated)).divergence
    positions = [entry["position"] for entry in div.context_a]
    assert positions == [2, 3, 4]


def test_timestamps_rule_masks_rdtsc_only_delta():
    mutated = _stream()
    mutated[0] = RdtscRecord(value=999)
    strict = diff_logs(iter(_stream()), iter(mutated))
    assert strict.divergence is not None
    masked = diff_logs(iter(_stream()), iter(mutated),
                       rules=resolve_rules(["timestamps"]))
    assert masked.divergence is None
    assert masked.rule_hits["timestamps"] > 0


def test_sentinels_rule_skips_attestation_mismatch():
    mutated = _stream()
    mutated[5] = SentinelRecord(icount=300, digest=0xCC)
    result = diff_logs(iter(_stream()), iter(mutated),
                       rules=resolve_rules(["sentinels"]))
    assert result.divergence is None
    # Both sides' sentinels were skipped: 2 per side, 2 rules hits each.
    assert result.rule_hits["sentinels"] == 4


def test_ignore_rules_never_mask_a_real_input_divergence():
    mutated = _stream()
    mutated[3] = PioInRecord(port=1, value=8)
    result = diff_logs(
        iter(_stream()), iter(mutated),
        rules=resolve_rules(["timestamps", "entropy", "sentinels",
                             "end-digest", "markers"]))
    assert result.divergence is not None
    assert result.divergence.kind == "input"


def test_unknown_ignore_rule_fails_loudly():
    with pytest.raises(LogError, match="unknown ignore rule"):
        resolve_rules(["wallclock"])


# ---------------------------------------------------------------------------
# differential fuzzing: one perturbed record is pinned exactly
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=1)
def _fuzz_recording():
    manifest = SessionManifest(benchmark="apache", seed=2018, attack="rop",
                               max_instructions=400_000)
    spec = manifest.build_spec()
    run = Recorder(spec, RecorderOptions(max_instructions=400_000,
                                         sentinel_records=32)).run()
    return manifest, spec, run


@functools.lru_cache(maxsize=1)
def _fuzz_frames(frame_records: int = 8) -> tuple[bytes, ...]:
    frames: list[bytes] = []
    _, _, run = _fuzz_recording()
    writer = StreamingLogWriter(frame_records, on_frame=frames.append)
    for record in run.log.records():
        writer.append(record)
    writer.finish()
    return tuple(frames)


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_perturbed_record_is_pinned_exactly(data):
    """Mutate exactly one record anywhere in a real recording; the diff
    must name that record — same position on both sides, right icount,
    differing payloads — as an input divergence."""
    _, _, run = _fuzz_recording()
    frames = _fuzz_frames()
    index = data.draw(st.integers(min_value=0, max_value=len(frames) - 1),
                      label="frame")
    seed = data.draw(st.integers(min_value=0, max_value=2 ** 16),
                     label="seed")
    plan = FaultPlan([FaultSpec(FaultKind.PERTURB_RECORD, target=index)],
                     seed=seed)
    mutated = plan.apply_to_frame(index, frames[index])
    # A frame with no perturbable record passes through untouched.
    assume(mutated != frames[index])

    records_a = list(run.log.records())
    records_b: list = []
    for position, frame in enumerate(frames):
        records_b.extend(
            parse_frame(mutated if position == index else frame)[1])
    assert len(records_b) == len(records_a)

    # Ground truth, computed independently of the walk.
    victim = next(i for i, (ra, rb) in enumerate(zip(records_a, records_b))
                  if ra != rb)
    icount = 0
    for record in records_a[:victim + 1]:
        if is_async_record(record):
            icount = record.icount

    div = diff_logs(iter(records_a), iter(records_b)).divergence
    assert div is not None and div.kind == "input"
    assert div.position_a == victim and div.position_b == victim
    assert div.icount == icount
    assert div.payload_a != div.payload_b


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_no_false_divergence_under_ignore_only_deltas(seed):
    """Rewriting every rdtsc/rdrand value is invisible under the
    matching rules — and byte-identical copies never diverge."""
    import random

    _, _, run = _fuzz_recording()
    records_a = list(run.log.records())
    rng = random.Random(seed)
    records_b = [
        RdtscRecord(value=rng.getrandbits(32))
        if isinstance(record, RdtscRecord)
        else RdrandRecord(value=rng.getrandbits(32))
        if isinstance(record, RdrandRecord)
        else record
        for record in records_a
    ]
    clean = diff_logs(iter(records_a), iter(list(records_a)))
    assert clean.divergence is None
    masked = diff_logs(iter(records_a), iter(records_b),
                       rules=resolve_rules(["timestamps", "entropy"]))
    assert masked.divergence is None


# ---------------------------------------------------------------------------
# CLI: parity line, exit codes, canonical JSON
# ---------------------------------------------------------------------------

def _log_of(records) -> InputLog:
    log = InputLog()
    for record in records:
        log.append(record)
    return log


def _save_fuzz_session(path, log=None):
    manifest, _, run = _fuzz_recording()
    save_session(path, manifest, log if log is not None else run.log)
    return path


def test_cli_diff_parity_on_identical_sessions(tmp_path, capsys):
    a = _save_fuzz_session(tmp_path / "a.session")
    b = tmp_path / "b.session"
    shutil.copy(a, b)
    code = cli_main(["diff", str(a), str(b)])
    out = capsys.readouterr().out
    assert code == 0
    assert out.strip().endswith("REPLAY PARITY: TRUE")


def test_cli_diff_pins_perturbed_record(tmp_path, capsys):
    manifest, _, run = _fuzz_recording()
    records = list(run.log.records())
    victim = next(i for i, r in enumerate(records)
                  if isinstance(r, MmioReadRecord))
    records[victim] = dataclasses.replace(
        records[victim], value=records[victim].value + 1)
    a = _save_fuzz_session(tmp_path / "a.session")
    b = _save_fuzz_session(tmp_path / "b.session",
                           log=_log_of(records))
    report_path = tmp_path / "report.json"
    code = cli_main(["diff", str(a), str(b), "--json",
                     "--report", str(report_path)])
    out = capsys.readouterr().out
    assert code == 1
    report = json.loads(out)
    assert report["parity"] is False
    assert report["verdict"] == "input-divergence"
    assert report["divergence"]["position_a"] == victim
    # Canonical form: stable key order, compact separators.
    assert out.strip() == json.dumps(report, sort_keys=True,
                                     separators=(",", ":"))
    assert json.loads(report_path.read_text()) == report


def test_cli_diff_human_rendering_ends_with_false(tmp_path, capsys):
    manifest, _, run = _fuzz_recording()
    records = list(run.log.records())
    victim = next(i for i, r in enumerate(records)
                  if isinstance(r, RdtscRecord))
    records[victim] = RdtscRecord(value=records[victim].value + 1)
    a = _save_fuzz_session(tmp_path / "a.session")
    b = _save_fuzz_session(tmp_path / "b.session",
                           log=_log_of(records))
    assert cli_main(["diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert out.strip().endswith("REPLAY PARITY: FALSE")
    assert "first divergence" in out
    # The same delta vanishes under the timestamps rule.
    assert cli_main(["diff", str(a), str(b), "--ignore", "timestamps"]) == 0
    assert capsys.readouterr().out.strip().endswith("REPLAY PARITY: TRUE")


def test_cli_diff_unknown_rule_and_missing_run_exit_2(tmp_path, capsys):
    a = _save_fuzz_session(tmp_path / "a.session")
    assert cli_main(["diff", str(a), str(a), "--ignore", "nope"]) == 2
    assert cli_main(["diff", str(a), str(tmp_path / "missing.session")]) == 2
    capsys.readouterr()


def test_cli_diff_state_divergence_without_bisection(tmp_path, capsys):
    """A forged sentinel digest reports a state divergence with its
    window even when bisection is disabled (or impossible)."""
    manifest, _, run = _fuzz_recording()
    records = list(run.log.records())
    victim = next(i for i, r in enumerate(records)
                  if isinstance(r, SentinelRecord))
    records[victim] = dataclasses.replace(
        records[victim], digest=records[victim].digest ^ 0x1)
    a = _save_fuzz_session(tmp_path / "a.session")
    b = _save_fuzz_session(tmp_path / "b.session",
                           log=_log_of(records))
    code = cli_main(["diff", str(a), str(b), "--no-bisect", "--json"])
    report = json.loads(capsys.readouterr().out)
    assert code == 1
    assert report["verdict"] == "state-divergence"
    assert report["divergence"]["window"] is not None
    assert report["bisection"] is None


# ---------------------------------------------------------------------------
# fsck exit codes
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=1)
def _store_golden_bytes():
    import pathlib

    golden = pathlib.Path(__file__).resolve().parent / "golden" / "store.store"
    return {name: (golden / name).read_bytes()
            for name in ("MANIFEST.json", "journal.v3")}


def _make_store(tmp_path):
    target = tmp_path / "store"
    target.mkdir()
    for name, payload in _store_golden_bytes().items():
        (target / name).write_bytes(payload)
    return target


def test_fsck_clean_store_exits_0(tmp_path, capsys):
    assert cli_main(["fsck", str(_make_store(tmp_path))]) == 0
    assert "resume plan" in capsys.readouterr().out


def test_fsck_torn_journal_exits_1(tmp_path, capsys):
    store = _make_store(tmp_path)
    journal = store / "journal.v3"
    journal.write_bytes(journal.read_bytes()[:-5])
    code = cli_main(["fsck", str(store), "--json"])
    report = json.loads(capsys.readouterr().out)
    assert code == 1
    assert report["status"] == "recoverable"
    assert report["exit_code"] == 1
    assert report["notes"]
    assert report["recording_complete"] is False


def test_fsck_corrupt_manifest_exits_2(tmp_path, capsys):
    store = _make_store(tmp_path)
    manifest = store / "MANIFEST.json"
    manifest.write_bytes(manifest.read_bytes()[:-10] + b"corruption")
    code = cli_main(["fsck", str(store), "--json"])
    report = json.loads(capsys.readouterr().out)
    assert code == 2
    assert report["status"] == "corrupt"
    assert report["exit_code"] == 2


def test_diff_surfaces_torn_store_journal_as_note(tmp_path, capsys):
    """Diffing against a damaged store still works on the valid prefix
    and carries the fsck-style note into the report."""
    store = _make_store(tmp_path)
    session = tmp_path / "ref.session"
    pristine = RunSource.open(store)
    save_session(session, pristine.session, pristine.materialize())
    journal = store / "journal.v3"
    journal.write_bytes(journal.read_bytes()[:-5])
    code = cli_main(["diff", str(store), str(session), "--json"])
    report = json.loads(capsys.readouterr().out)
    # The store's journal lost its tail (including the End record), so
    # the comparison is a length mismatch — pinned, not hidden.
    assert code == 1
    assert report["verdict"] == "length-mismatch"
    assert any("torn tail" in note for note in report["notes"])


# ---------------------------------------------------------------------------
# checkpoint-seeded bisection: pin a mid-window state corruption
# ---------------------------------------------------------------------------

BISECT_BUDGET = 150_000
PERTURB_ICOUNT = 90_001
WINDOW = (85_000, 95_000)


@functools.lru_cache(maxsize=1)
def _bisect_recording():
    manifest = SessionManifest(benchmark="mysql", seed=2018, attack=None,
                               max_instructions=BISECT_BUDGET)
    spec = manifest.build_spec()
    run = Recorder(spec, RecorderOptions(max_instructions=BISECT_BUDGET,
                                         sentinel_records=16)).run()
    store = CheckpointingReplayer(
        spec, run.log, CheckpointingOptions(period_s=0.01),
    ).run_to_end().store
    return manifest, spec, run.log, store


def _stable_word_address(spec, log, store):
    """An address whose page is untouched across the probe window, so a
    host-poked corruption survives to the window's end."""
    probe = ReplayProbe(spec, log, store=store)
    at_corruption = probe.state_at(PERTURB_ICOUNT, want_pages=True)
    at_window_end = probe.state_at(WINDOW[1], want_pages=True)
    for index in sorted(at_corruption.pages, reverse=True):
        if at_corruption.pages[index] == at_window_end.pages.get(index):
            return index * spec.config.page_size, index
    raise AssertionError("no stable page across the probe window")


@pytest.mark.parametrize("backend", ["interp", "trace"])
def test_bisection_pins_synthetic_state_corruption(backend):
    """Corrupt one memory word at a known mid-window instruction; the
    bisection must return exactly that icount with the page in the
    delta, seeding every probe from the store's checkpoints."""
    _, spec, log, store = _bisect_recording()
    spec = dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, exec_backend=backend))
    addr, page_index = _stable_word_address(spec, log, store)

    def perturb(machine):
        machine.memory.write_word(
            addr, machine.memory.read_word(addr) ^ 0xDEAD)

    probe_a = ReplayProbe(spec, log, store=store)
    probe_b = ReplayProbe(spec, log, store=store, seed_limit=WINDOW[0],
                          perturb=perturb, perturb_icount=PERTURB_ICOUNT)
    result = bisect_window(probe_a, probe_b, WINDOW)
    assert result is not None
    assert result.icount == PERTURB_ICOUNT
    assert result.last_equal_icount == PERTURB_ICOUNT - 1
    assert [delta.page for delta in result.delta.pages] == [page_index]
    # "Using only run-store checkpoints": no probe replayed from zero,
    # and the total replayed work is a couple of window-lengths, not a
    # full re-record per probe.
    assert result.seed_icounts and all(s > 0 for s in result.seed_icounts)
    assert result.probes >= 2
    assert result.instructions_replayed < BISECT_BUDGET * 2


def test_bisection_returns_none_without_divergence():
    _, spec, log, store = _bisect_recording()
    probe_a = ReplayProbe(spec, log, store=store)
    probe_b = ReplayProbe(spec, log, store=store, seed_limit=WINDOW[0])
    assert bisect_window(probe_a, probe_b, WINDOW) is None


def test_probe_seeds_respect_the_window_start():
    """The suspect run's probes must never seed from a checkpoint inside
    the window — such a checkpoint could already carry the corruption."""
    _, spec, log, store = _bisect_recording()
    # A probe point with a checkpoint between the window start and it:
    # the unrestricted probe may use it, the suspect probe must not.
    inside = next(c.icount for c in store.all() if c.icount > WINDOW[1])
    target = inside + 1_000
    limited = ReplayProbe(spec, log, store=store, seed_limit=WINDOW[0])
    limited.state_at(target)
    assert all(seed <= WINDOW[0] for seed in limited.seed_icounts)
    free = ReplayProbe(spec, log, store=store)
    free.state_at(target)
    assert max(free.seed_icounts) > WINDOW[0]


def test_diff_runs_bisects_forged_sentinel_window(tmp_path):
    """End-to-end: a forged sentinel digest between two session files
    walks to a state divergence; bisection then runs both replays and —
    finding them in agreement — reports the recording-side fault."""
    manifest, spec, log, _ = _bisect_recording()
    records = list(log.records())
    sentinels = [i for i, r in enumerate(records)
                 if isinstance(r, SentinelRecord)]
    victim = sentinels[len(sentinels) // 2]
    records[victim] = dataclasses.replace(
        records[victim], digest=records[victim].digest ^ 0x1)
    a = tmp_path / "a.session"
    b = tmp_path / "b.session"
    save_session(a, manifest, log)
    save_session(b, manifest, _log_of(records))
    report = diff_runs(RunSource.open(a), RunSource.open(b))
    assert report.verdict == "state-divergence"
    assert report.divergence.window is not None
    assert any("not replay-reproducible" in note for note in report.notes)
