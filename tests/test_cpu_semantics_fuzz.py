"""Property-based fuzzing of CPU semantics against reference models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Cpu, ExitControls
from repro.isa import Asm, Opcode

from tests.conftest import DATA_BASE, STACK_TOP, build_machine, run_until_exit

_WORD = 2**64

_ALU_REFERENCE = {
    Opcode.ADD: lambda a, b: (a + b) % _WORD,
    Opcode.SUB: lambda a, b: (a - b) % _WORD,
    Opcode.MUL: lambda a, b: (a * b) % _WORD,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: (a << (b & 63)) % _WORD,
    Opcode.SHR: lambda a, b: a >> (b & 63),
}


class TestAluSemantics:
    @settings(deadline=None, max_examples=60)
    @given(
        op=st.sampled_from(sorted(_ALU_REFERENCE, key=lambda o: o.value)),
        lhs=st.integers(0, _WORD - 1),
        rhs=st.integers(0, _WORD - 1),
    )
    def test_alu_matches_reference(self, op, lhs, rhs):
        asm = Asm(base=0x100)
        asm.emit(op, rd=3, rs1=1, rs2=2)
        asm.hlt()
        cpu = build_machine(asm)
        cpu.regs[1] = lhs
        cpu.regs[2] = rhs
        run_until_exit(cpu)
        assert cpu.regs[3] == _ALU_REFERENCE[op](lhs, rhs)

    @settings(deadline=None, max_examples=40)
    @given(
        lhs=st.integers(0, _WORD - 1),
        divisor=st.integers(1, _WORD - 1),
    )
    def test_div_matches_reference(self, lhs, divisor):
        asm = Asm(base=0x100)
        asm.div(3, 1, 2)
        asm.hlt()
        cpu = build_machine(asm)
        cpu.regs[1] = lhs
        cpu.regs[2] = divisor
        run_until_exit(cpu)
        assert cpu.regs[3] == lhs // divisor

    @settings(deadline=None, max_examples=40)
    @given(
        lhs=st.integers(-(2**31), 2**31 - 1),
        rhs=st.integers(-(2**31), 2**31 - 1),
    )
    def test_signed_comparison_flags(self, lhs, rhs):
        asm = Asm(base=0x100)
        asm.li(1, lhs)
        asm.li(2, rhs)
        asm.cmp(1, 2)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.zero == (lhs == rhs)
        assert cpu.negative == (lhs < rhs)


class TestStackDiscipline:
    @settings(deadline=None, max_examples=30)
    @given(values=st.lists(st.integers(0, _WORD - 1), min_size=1,
                           max_size=12))
    def test_push_pop_round_trip(self, values):
        asm = Asm(base=0x100)
        for index, _ in enumerate(values):
            asm.li(1, 0)  # placeholder; real values poked below
            asm.push(1)
        for index in reversed(range(len(values))):
            asm.pop(2)
            asm.li(3, DATA_BASE + index)  # unused, keeps layout nontrivial
        asm.hlt()
        cpu = build_machine(asm)
        # Drive via direct stack ops instead: simpler and equivalent.
        cpu = build_machine(asm)
        for value in values:
            cpu._push_word(value)
        for value in reversed(values):
            assert cpu._pop_word() == value

    @settings(deadline=None, max_examples=30)
    @given(depth=st.integers(1, 40))
    def test_nested_calls_balance(self, depth):
        asm = Asm(base=0x100)
        asm.call("f0")
        asm.hlt()
        for level in range(depth):
            asm.label(f"f{level}")
            if level + 1 < depth:
                asm.call(f"f{level + 1}")
            asm.ret()
        controls = ExitControls(ras_alarm_exits=True)
        cpu = build_machine(asm, controls=controls)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason.value == "hlt"
        assert cpu.regs[14] == STACK_TOP
        assert len(cpu.ras) == 0


class TestRandomProgramRobustness:
    """Random instruction soup must never crash the *simulator*: every
    outcome is an architectural event (fault, triple fault, halt) or more
    execution — never a Python exception."""

    @settings(deadline=None, max_examples=25)
    @given(
        words=st.lists(st.integers(0, _WORD - 1), min_size=4, max_size=64),
        seed=st.integers(0, 2**16),
    )
    def test_instruction_soup_is_contained(self, words, seed):
        from repro.config import DEFAULT_CONFIG
        from repro.memory import (
            PERM_EXEC,
            PERM_READ,
            PERM_WRITE,
            PhysicalMemory,
        )

        memory = PhysicalMemory(page_size=DEFAULT_CONFIG.page_size)
        memory.map_range(0x100, 512, PERM_READ | PERM_EXEC)
        memory.map_range(0x1000, 512, PERM_READ | PERM_WRITE)
        for offset, word in enumerate(words):
            memory.write_word(0x100 + offset, word)
        cpu = Cpu(memory, DEFAULT_CONFIG)
        cpu.pc = 0x100
        cpu.regs[14] = 0x1200
        for _ in range(2000):
            exit_event = cpu.step()
            if exit_event is not None and exit_event.reason.value in (
                    "triple_fault", "hlt"):
                break
            if cpu.halted:
                break
        # Reaching here without an exception is the property.
        assert cpu.icount >= 0
