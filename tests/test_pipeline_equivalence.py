"""Pipelined runs must be bit-equivalent to the sequential phases.

The streaming pipeline changes only *when* work happens, never *what*
happens: the recorded log bytes, the checkpoint contents, the final CPU
state, and the alarm verdicts must match a sequential record → CR → AR
run of the same spec exactly, on both pipeline backends.  The fleet
driver must return per-session results in input order regardless of the
pool's completion order, and the checkpoint store's resident-byte budget
must flatten history without changing reconstruction.
"""

import pytest

from repro.core.fleet import FleetSession, run_fleet
from repro.core.framework import RnRSafe, RnRSafeOptions
from repro.core.parallel import (
    record_and_replay_pipelined,
    resolve_alarms_parallel,
)
from repro.errors import HypervisorError
from repro.replay.checkpoint import CheckpointStore
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import build_workload, profile_by_name

BUDGET = 120_000
RECORDER_OPTIONS = RecorderOptions(max_instructions=BUDGET)
CR_OPTIONS = CheckpointingOptions(period_s=0.2)


def _spec():
    return build_workload(profile_by_name("mysql"))


def _verdict_key(verdict):
    # analysis_cycles and from_checkpoint legitimately differ between a
    # sequential AR (which may start from a checkpoint taken after the
    # alarm was confirmed) and a pipelined AR (which starts from the
    # latest checkpoint existing at confirmation time); the classification
    # itself must not.
    return (
        verdict.kind,
        verdict.benign_cause,
        verdict.alarm.icount,
        verdict.alarm.kind,
        verdict.alarm.tid,
    )


@pytest.fixture(scope="module")
def sequential():
    """The reference sequential run: record, CR, thread-pool ARs."""
    spec = _spec()
    recording = Recorder(spec, RECORDER_OPTIONS).run()
    replayer = CheckpointingReplayer(spec, recording.log, CR_OPTIONS)
    checkpointing = replayer.run_to_end()
    resolution = resolve_alarms_parallel(
        spec, recording.log, checkpointing.pending_alarms,
        store=checkpointing.store, backend="thread",
    )
    final_cpu_state = replayer.machine.cpu.capture_state()
    return recording, checkpointing, resolution, final_cpu_state


@pytest.fixture(scope="module", params=["thread", "process"])
def pipelined(request):
    """One pipelined run per backend, frames small enough to matter."""
    run = record_and_replay_pipelined(
        _spec(), RECORDER_OPTIONS, CR_OPTIONS,
        backend=request.param, frame_records=4, queue_depth=2,
    )
    return request.param, run


class TestPipelineEquivalence:
    def test_session_bytes_identical(self, sequential, pipelined):
        recording, _, _, _ = sequential
        _, run = pipelined
        assert run.recording.log.to_bytes() == recording.log.to_bytes()

    def test_final_cpu_state_identical(self, sequential, pipelined):
        _, _, _, final_cpu_state = sequential
        _, run = pipelined
        assert run.final_cpu_state == final_cpu_state

    def test_checkpoints_identical(self, sequential, pipelined):
        _, checkpointing, _, _ = sequential
        _, run = pipelined
        seq_store = checkpointing.store
        pipe_store = run.checkpointing.store
        assert len(pipe_store) == len(seq_store)
        for seq_cp, pipe_cp in zip(seq_store.all(), pipe_store.all()):
            assert pipe_cp.icount == seq_cp.icount
            assert pipe_cp.cycles == seq_cp.cycles
            assert pipe_cp.cpu_state == seq_cp.cpu_state
            assert pipe_cp.log_position == seq_cp.log_position
            assert (pipe_store.reconstruct_pages(pipe_cp)
                    == seq_store.reconstruct_pages(seq_cp))
            assert (pipe_store.reconstruct_blocks(pipe_cp)
                    == seq_store.reconstruct_blocks(seq_cp))

    def test_cr_bookkeeping_identical(self, sequential, pipelined):
        _, checkpointing, _, _ = sequential
        _, run = pipelined
        assert run.checkpointing.alarms_seen == checkpointing.alarms_seen
        assert (run.checkpointing.dismissed_underflows
                == checkpointing.dismissed_underflows)
        assert (run.checkpointing.alarm_cycles
                == checkpointing.alarm_cycles)
        assert (run.checkpointing.alarm_positions
                == checkpointing.alarm_positions)
        assert ([a.icount for a in run.checkpointing.pending_alarms]
                == [a.icount for a in checkpointing.pending_alarms])

    def test_verdicts_identical(self, sequential, pipelined):
        _, checkpointing, resolution, _ = sequential
        _, run = pipelined
        assert len(checkpointing.pending_alarms) >= 2  # the run must AR
        assert ([_verdict_key(v) for v in run.resolution.verdicts]
                == [_verdict_key(v) for v in resolution.verdicts])

    def test_stats_cover_every_frame(self, sequential, pipelined):
        backend, run = pipelined
        stats = run.stats
        assert stats.backend == backend
        assert len(stats.frames) >= 2
        assert len(stats.produced_cycles) == len(stats.frames)
        assert len(stats.consumed_cycles) == len(stats.frames)
        assert list(stats.produced_cycles) == sorted(stats.produced_cycles)
        assert list(stats.consumed_cycles) == sorted(stats.consumed_cycles)
        assert (sum(f.record_count for f in stats.frames)
                == len(run.recording.log))

    def test_unknown_backend_rejected(self):
        with pytest.raises(HypervisorError, match="backend"):
            record_and_replay_pipelined(_spec(), backend="gpu")

    def test_logless_recording_rejected(self):
        with pytest.raises(HypervisorError, match="log_enabled"):
            record_and_replay_pipelined(
                _spec(), RecorderOptions(log_enabled=False),
            )


class TestFrameworkPipeline:
    def test_framework_reports_match(self, sequential):
        recording, checkpointing, _, _ = sequential
        options = RnRSafeOptions(
            recorder=RECORDER_OPTIONS,
            checkpointing=CR_OPTIONS,
            pipeline=True,
        )
        report = RnRSafe(_spec(), options).run()
        assert (report.recording.log.to_bytes()
                == recording.log.to_bytes())
        assert len(report.outcomes) == len(checkpointing.pending_alarms)
        assert not report.attacks  # mysql's alarms are all benign
        assert len(report.false_positives) == len(report.outcomes)


class TestFleet:
    def test_results_in_input_order(self):
        sessions = [
            FleetSession(benchmark="mysql", seed=2018 + index,
                         max_instructions=60_000, period_s=0.2)
            for index in range(3)
        ]
        fleet = run_fleet(sessions, backend="thread")
        assert fleet.backend == "thread"
        assert [r.index for r in fleet.results] == [0, 1, 2]
        assert [r.seed for r in fleet.results] == [2018, 2019, 2020]
        assert all(r.benchmark == "mysql" for r in fleet.results)
        assert all(r.instructions > 0 for r in fleet.results)
        # Different seeds, different histories.
        digests = {r.session_digest for r in fleet.results}
        assert len(digests) == 3

    def test_fleet_pipelined_matches_sequential_digests(self):
        sessions = [
            FleetSession(benchmark="fileio", seed=5,
                         max_instructions=60_000),
            FleetSession(benchmark="mysql", seed=5,
                         max_instructions=60_000),
        ]
        plain = run_fleet(sessions, backend="thread")
        piped = run_fleet(sessions, backend="thread", pipeline=True,
                          frame_records=4, queue_depth=2)
        for before, after in zip(plain.results, piped.results):
            assert after.session_digest == before.session_digest
            assert after.verdicts == before.verdicts
            assert after.checkpoints == before.checkpoints
            assert after.pipelined and not before.pipelined

    def test_single_session_runs_inline(self):
        fleet = run_fleet([FleetSession(benchmark="fileio",
                                        max_instructions=40_000)])
        assert fleet.backend == "inline"
        assert len(fleet.results) == 1

    def test_empty_fleet(self):
        fleet = run_fleet([])
        assert fleet.results == ()

    def test_unknown_backend_rejected(self):
        with pytest.raises(HypervisorError, match="backend"):
            run_fleet([FleetSession(benchmark="fileio")], backend="gpu")


class TestCheckpointBudget:
    def _store_with_checkpoints(self, count, budget=None):
        from repro.cpu.state import CpuState
        from repro.isa.opcodes import REG_COUNT

        store = CheckpointStore(max_resident_bytes=budget)
        for index in range(count):
            store.add(
                icount=index * 100,
                cycles=index * 1000,
                cpu_state=CpuState(
                    regs=(0,) * REG_COUNT, pc=index, zero=False,
                    negative=False, user=False, int_enabled=True,
                    icount=index * 100, halted=False,
                ),
                # The same hot page plus one exclusive page per
                # checkpoint: merging forward drops the superseded hot
                # copy (freeing bytes) while exclusive pages survive.
                pages={0: (index,) * 64, index + 1: (index,) * 64},
                disk_blocks={},
                backras={},
                current_tid=0,
                log_position=index,
            )
        return store

    def test_budget_merges_oldest_forward(self):
        # Each checkpoint holds 2 pages * 64 words * 8 bytes = 1024 bytes;
        # merging one forward frees its superseded hot-page copy (512 B).
        full = 6 * 1024
        store = self._store_with_checkpoints(6, budget=full - 1024)
        assert store.budget_merges > 0
        assert store.resident_bytes <= full - 1024
        # Exclusive pages merged forward stay reachable through the
        # survivor chain; the hot page resolves to the newest copy.
        oldest = store.all()[0]
        pages = store.reconstruct_pages(oldest)
        first_kept = oldest.checkpoint_id - 1  # ids are 1-based
        assert pages[0] == (first_kept,) * 64
        for index in range(first_kept + 1):
            assert pages[index + 1] == (index,) * 64

    def test_budget_floor_of_two(self):
        store = self._store_with_checkpoints(6, budget=1)
        assert len(store) == 2

    def test_unbudgeted_store_never_merges(self):
        store = self._store_with_checkpoints(6)
        assert store.budget_merges == 0
        assert len(store) == 6

    def test_budget_equivalent_reconstruction_in_cr(self):
        spec = _spec()
        recording = Recorder(spec, RECORDER_OPTIONS).run()
        free = CheckpointingReplayer(
            spec, recording.log, CR_OPTIONS,
        ).run_to_end()
        budget = CheckpointingReplayer(
            spec, recording.log,
            CheckpointingOptions(period_s=0.2, max_resident_bytes=1),
        ).run_to_end()
        assert budget.store.budget_merges > 0
        assert len(budget.store) == 2
        # The newest checkpoint reconstructs identically either way.
        free_latest = free.store.latest()
        budget_latest = budget.store.latest()
        assert budget_latest.icount == free_latest.icount
        assert (budget.store.reconstruct_pages(budget_latest)
                == free.store.reconstruct_pages(free_latest))
        assert (budget.store.reconstruct_blocks(budget_latest)
                == free.store.reconstruct_blocks(free_latest))
