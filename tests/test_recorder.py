"""Tests for the recording hypervisor and the four recording setups."""

import pytest

from repro.core.modes import (
    ALL_RECORDING_SETUPS,
    NO_REC,
    NO_REC_PV,
    REC,
    REC_NO_RAS,
    record_benchmark,
)
from repro.perf.account import Category
from repro.rnr.records import (
    AlarmRecord,
    EndRecord,
    EvictRecord,
    InterruptRecord,
    NetworkDmaRecord,
    RdtscRecord,
)
from repro.rnr.recorder import Recorder, RecorderOptions

from tests.conftest import cached_recording, small_workload


class TestLogStructure:
    def test_log_ends_with_end_record(self):
        spec, run = cached_recording("mysql")
        assert isinstance(run.log[len(run.log) - 1], EndRecord)

    def test_async_records_are_icount_monotonic(self):
        spec, run = cached_recording("apache")
        last = -1
        for record in run.log.records():
            icount = getattr(record, "icount", None)
            if icount is not None:
                assert icount >= last
                last = icount

    def test_rdtsc_values_are_monotonic(self):
        spec, run = cached_recording("mysql")
        values = [r.value for r in run.log.records()
                  if isinstance(r, RdtscRecord)]
        assert len(values) > 5
        assert values == sorted(values)

    def test_interrupts_present(self):
        spec, run = cached_recording("fileio")
        vectors = {r.vector for r in run.log.records()
                   if isinstance(r, InterruptRecord)}
        assert 1 in vectors  # timer
        assert 2 in vectors  # disk

    def test_network_content_logged_verbatim(self):
        spec, run = cached_recording("apache")
        payloads = [r.words for r in run.log.records()
                    if isinstance(r, NetworkDmaRecord)]
        assert payloads
        scheduled = {payload for _, payload in spec.packet_schedule}
        for payload in payloads:
            assert payload in scheduled

    def test_end_record_carries_digest(self):
        spec, run = cached_recording("mysql")
        end = run.log[len(run.log) - 1]
        assert end.digest != 0

    def test_log_serialization_round_trip(self):
        spec, run = cached_recording("mysql")
        from repro.rnr.log import InputLog

        parsed = InputLog.from_bytes(run.log.to_bytes())
        assert parsed.records() == run.log.records()


class TestSetups:
    def test_norec_produces_no_log(self):
        spec = small_workload("radiosity")
        run = record_benchmark(spec, NO_REC, max_instructions=1_000_000)
        assert len(run.log) == 0
        assert run.metrics.log_bytes == 0

    def test_rec_is_slower_than_norec(self):
        spec = small_workload("mysql")
        norec = record_benchmark(spec, NO_REC, max_instructions=2_000_000)
        rec = record_benchmark(spec, REC, max_instructions=2_000_000)
        assert rec.metrics.total_cycles > norec.metrics.total_cycles

    def test_pv_is_faster_than_emulated(self):
        spec = small_workload("fileio")
        pv = record_benchmark(spec, NO_REC_PV, max_instructions=2_000_000)
        emulated = record_benchmark(spec, NO_REC, max_instructions=2_000_000)
        assert pv.metrics.total_cycles < emulated.metrics.total_cycles

    def test_recnoras_skips_ras_costs(self):
        spec = small_workload("mysql")
        noras = record_benchmark(spec, REC_NO_RAS, max_instructions=2_000_000)
        rec = record_benchmark(spec, REC, max_instructions=2_000_000)
        assert noras.metrics.account.cycles(Category.RAS) == 0
        assert rec.metrics.account.cycles(Category.RAS) > 0

    def test_recnoras_raises_no_alarms(self):
        spec = small_workload("apache")
        run = record_benchmark(spec, REC_NO_RAS, max_instructions=2_000_000)
        assert run.alarms == []
        assert run.evicts == []

    @pytest.mark.parametrize("setup", ALL_RECORDING_SETUPS,
                             ids=lambda s: s.name)
    def test_every_setup_completes(self, setup):
        spec = small_workload("make")
        run = record_benchmark(spec, setup, max_instructions=2_000_000)
        assert run.stop_reason in ("shutdown", "budget")


class TestRecorderInvariants:
    def test_every_filter_config_replays_deterministically(self):
        """Filters change exits and timing, but each configuration's own
        recording must still replay exactly (alarms/evicts are markers,
        not state changes)."""
        from repro.replay.base import DeterministicReplayer

        spec = small_workload("apache")
        for backras, whitelist in ((True, True), (False, True),
                                   (False, False)):
            options = RecorderOptions(
                backras=backras, whitelist=whitelist,
                max_instructions=2_000_000, digest=True,
            )
            run = Recorder(spec, options).run()
            result = DeterministicReplayer(spec, run.log.cursor()).run()
            assert result.reached_end and result.digest_checked

    def test_stall_on_alarm_stops_before_payload(self):
        from tests.conftest import cached_attack_recording
        spec, chain, _ = cached_attack_recording()
        options = RecorderOptions(stall_on_alarm=True,
                                  max_instructions=3_000_000)
        run = Recorder(spec, options).run()
        assert run.stop_reason == "alarm_stall"
        # set_root never ran: the UID cell is untouched.
        assert run.machine.memory.read_word(spec.kernel.layout.uid_addr) == 1000

    def test_alarm_cycles_recorded(self):
        from tests.conftest import cached_attack_recording
        spec, chain, run = cached_attack_recording()
        for alarm in run.alarms:
            assert alarm.icount in run.alarm_cycles

    def test_evict_records_precede_matching_underflows(self):
        spec, run = cached_recording("apache")
        evict_icounts = [r.icount for r in run.log.records()
                         if isinstance(r, EvictRecord)]
        underflow_icounts = [
            r.icount for r in run.log.records()
            if isinstance(r, AlarmRecord) and r.kind.value == "underflow"
        ]
        if underflow_icounts:
            assert evict_icounts
            assert min(evict_icounts) < min(underflow_icounts)

    def test_budget_stop_still_writes_end_record(self):
        spec = small_workload("radiosity")
        run = Recorder(spec, RecorderOptions(max_instructions=20_000)).run()
        assert run.stop_reason == "budget"
        assert isinstance(run.log[len(run.log) - 1], EndRecord)

    def test_metrics_report_backras_traffic(self):
        spec, run = cached_recording("mysql")
        assert run.metrics.backras_bytes > 0
        assert run.metrics.context_switches > 0
