"""Tests for forensics, auditing, and the comparison baselines."""

import pytest

from repro.analysis import audit_window, build_attack_report
from repro.baselines import (
    CoarseCfiPolicy,
    HardwareShadowStackModel,
    build_slid_workload,
    chain_survives_slide,
    classify_chain_against_cfi,
    disclose_kernel_slide,
    run_instrumented_shadow_stack,
)
from repro.attacks import build_set_root_chain
from repro.replay import (
    AlarmReplayer,
    CheckpointingOptions,
    CheckpointingReplayer,
    VerdictKind,
)
from repro.workloads import RADIOSITY

from tests.conftest import cached_attack_recording, cached_recording, small_workload


@pytest.fixture(scope="module")
def confirmed_attack():
    spec, chain, run = cached_attack_recording()
    cr = CheckpointingReplayer(spec, run.log,
                               CheckpointingOptions()).run_to_end()
    hijack = next(a for a in cr.pending_alarms
                  if a.actual == chain.stack_words[0])
    replayer = AlarmReplayer(spec, run.log, hijack)
    verdict = replayer.analyze()
    assert verdict.kind is VerdictKind.ROP_CONFIRMED
    return spec, chain, run, replayer, verdict


class TestForensics:
    def test_how_names_the_vulnerable_function(self, confirmed_attack):
        spec, chain, run, replayer, verdict = confirmed_attack
        report = build_attack_report(replayer, verdict)
        assert report.vulnerable_function == "msg_handle"

    def test_what_recovers_the_staged_chain(self, confirmed_attack):
        spec, chain, run, replayer, verdict = confirmed_attack
        report = build_attack_report(replayer, verdict)
        joined = "\n".join(report.staged_chain)
        # The not-yet-consumed chain elements are visible above SP.
        assert "ops_table" in joined
        assert "kload2" in joined or "kdispatch2" in joined

    def test_who_identifies_the_thread(self, confirmed_attack):
        spec, chain, run, replayer, verdict = confirmed_attack
        report = build_attack_report(replayer, verdict)
        assert report.task is not None
        assert report.packets_received > 0

    def test_report_renders_all_sections(self, confirmed_attack):
        spec, chain, run, replayer, verdict = confirmed_attack
        text = build_attack_report(replayer, verdict).render()
        for section in ("[how]", "[who]", "[what]"):
            assert section in text

    def test_payload_execution_detected(self, confirmed_attack):
        spec, chain, run, replayer, verdict = confirmed_attack
        report = build_attack_report(replayer, verdict, recording=run)
        # This recording ran without stalling, so the payload fired.
        assert report.payload_executed
        assert report.uid_after == 0

    def test_alarm_point_state_is_unpolluted(self, confirmed_attack):
        """Without the final-state vantage the report shows the moment of
        hijack: the payload has not yet run (§6: "they did not execute")."""
        spec, chain, run, replayer, verdict = confirmed_attack
        report = build_attack_report(replayer, verdict)
        assert not report.payload_executed
        assert report.uid_after == 1000


class TestAuditing:
    def test_timeline_captures_scheduler_activity(self):
        spec, run = cached_recording("mysql")
        timeline = audit_window(spec, run.log)
        assert timeline.context_switches > 0
        assert timeline.threads_created >= 3
        assert timeline.filtered("context_switch")

    def test_timeline_is_ordered(self):
        spec, run = cached_recording("mysql")
        timeline = audit_window(spec, run.log)
        icounts = [event.icount for event in timeline.events]
        assert icounts == sorted(icounts)

    def test_bounded_window(self):
        spec, run = cached_recording("mysql")
        full = audit_window(spec, run.log)
        target = full.events[len(full.events) // 2].icount
        partial = audit_window(spec, run.log, until_icount=target)
        assert all(event.icount <= target for event in partial.events)

    def test_render(self):
        spec, run = cached_recording("mysql")
        text = audit_window(spec, run.log).render(limit=5)
        assert "switches" in text

    def test_audit_from_checkpoint(self):
        spec, run = cached_recording("mysql")
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions(period_s=0.5))
        result = cr.run_to_end()
        checkpoint = result.store.all()[0]
        timeline = audit_window(spec, run.log, checkpoint=checkpoint,
                                store=result.store)
        assert all(event.icount >= checkpoint.icount
                   for event in timeline.events)


class TestShadowStackBaseline:
    def test_inline_shadow_stack_detects_the_attack(self):
        spec, chain, run = cached_attack_recording()
        stats = run_instrumented_shadow_stack(spec,
                                              max_instructions=2_500_000)
        assert stats.detected_attack
        hijacked = [actual for _, _, actual in stats.violations]
        assert chain.stack_words[0] in hijacked

    def test_inline_shadow_stack_costs_far_more_than_native(self):
        """§2.3's point: instrumenting every call/ret adds >100% overhead,
        which is why RnR-Safe moves the precise check to the alarm
        replayer."""
        from repro.core.modes import NO_REC, record_benchmark

        spec, run = cached_recording("make")
        stats = run_instrumented_shadow_stack(
            spec, max_instructions=2_500_000, kernel_only=False,
        )
        native = record_benchmark(spec, NO_REC, max_instructions=2_500_000)
        assert (stats.metrics.total_cycles
                > 2 * native.metrics.total_cycles)
        assert stats.calls > 100

    def test_hardware_model_charges_spills(self):
        model = HardwareShadowStackModel(on_chip_entries=32)
        shallow = model.estimate_overhead_cycles(
            calls=1000, rets=1000, max_depth=20, switches=10,
        )
        deep = model.estimate_overhead_cycles(
            calls=1000, rets=1000, max_depth=80, switches=10,
        )
        assert deep > shallow


class TestCoarseCfiBaseline:
    def test_figure_10_chain_is_flagged(self):
        spec, chain, run = cached_attack_recording()
        verdict = classify_chain_against_cfi(spec.kernel, chain)
        assert verdict.detected
        assert chain.stack_words[0] in verdict.rejected_targets

    def test_call_preceded_returns_allowed(self):
        spec, run = cached_recording("make")
        policy = CoarseCfiPolicy(spec.kernel)
        # A legitimate return target: the instruction after `call kstrcpy`
        # inside msg_handle.
        start, end = spec.kernel.functions["msg_handle"]
        legitimate = [addr for addr in range(start + 1, end)
                      if policy.is_call_preceded(addr)]
        assert legitimate, "real return sites must satisfy the policy"


class TestAslrBaseline:
    def test_slides_are_seed_dependent(self):
        from repro.baselines.aslr import slide_for_seed

        slides = {slide_for_seed(seed) for seed in range(40)}
        assert len(slides) > 1

    def test_blind_chain_dies_under_nonzero_slide(self):
        spec, slide = build_slid_workload(RADIOSITY, seed=3)
        if slide == 0:
            pytest.skip("identity slide drawn")
        chain = build_set_root_chain(
            __import__("repro.workloads.suite", fromlist=["kernel_for_layout"]
                       ).kernel_for_layout()
        )
        assert not chain_survives_slide(chain.stack_words, slide)

    def test_disclosure_defeats_aslr(self):
        spec, slide = build_slid_workload(RADIOSITY, seed=3)
        disclosed = disclose_kernel_slide(spec)
        assert disclosed == slide
        # With the slide known, a chain built against the *slid* kernel
        # has correct addresses again.
        chain = build_set_root_chain(spec.kernel)
        g1 = chain.stack_words[0]
        assert spec.kernel.function_at(g1) is not None
