"""Regenerate the golden-trace corpus (run from the repo root).

    PYTHONPATH=src python tests/golden/generate.py

Each golden is one tiny recorded session — a workload the paper's
pipeline exercises end to end (clean run, the three attack classes, a
sentinel-dense recording, a durable run store) — plus ``expected.json``
with every figure the parity tests assert: record/alarm counts, the
SHA-256 of the serialized log bytes, the final state digest from the End
record, and the alarm verdicts.

The corpus is only regenerated deliberately (a wire-format or semantics
change that is *supposed* to move the digests); the committed files are
the contract.  ``test_golden_traces.py`` re-records every session under
both execution backends and demands bit-identical logs.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent

from repro.core.parallel import _run_producer, resolve_alarms_parallel
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.records import AlarmRecord, EndRecord
from repro.rnr.session import SessionManifest, save_session
from repro.store import RunStoreWriter

#: The corpus: (name, benchmark, attack, budget, sentinel, framed, kind).
GOLDENS = (
    ("clean", "mysql", None, 150_000, 16, False, "session"),
    ("rop", "apache", "rop", 1_000_000, 32, False, "session"),
    ("jop", "apache", "jop", 1_000_000, 32, False, "session"),
    ("dos", "apache", "dos", 1_000_000, 32, False, "session"),
    ("sentinel", "make", None, 150_000, 8, True, "session"),
    ("store", "fileio", None, 150_000, 16, False, "store"),
)


def _record(manifest: SessionManifest, sentinel: int):
    spec = manifest.build_spec()
    options = RecorderOptions(max_instructions=manifest.max_instructions,
                              sentinel_records=sentinel)
    return spec, options, Recorder(spec, options).run()


def _verdicts(spec, log) -> list[str]:
    alarms = [r for r in log.records() if isinstance(r, AlarmRecord)]
    if not alarms:
        return []
    resolution = resolve_alarms_parallel(spec, log, alarms,
                                         backend="thread", max_workers=2)
    return [verdict.kind.value for verdict in resolution.verdicts]


def generate() -> dict:
    expected: dict = {}
    for name, benchmark, attack, budget, sentinel, framed, kind in GOLDENS:
        manifest = SessionManifest(benchmark=benchmark, seed=2018,
                                   attack=attack, max_instructions=budget)
        spec, options, run = _record(manifest, sentinel)
        log_bytes = run.log.to_bytes()
        end = run.log.records()[-1]
        assert isinstance(end, EndRecord), f"{name}: no End record"
        if kind == "store":
            target = HERE / f"{name}.store"
            store = RunStoreWriter(target, manifest,
                                   frame_records=spec.config.frame_records)
            # Re-produce through the streaming journal path so the store
            # holds real write-ahead v3 frames (same bytes, same digests).
            journaled, _ = _run_producer(spec, options,
                                         spec.config.frame_records,
                                         store.append_frame)
            store.seal_log(journaled)
            assert journaled.log.to_bytes() == log_bytes
            path = target.name
        else:
            target = HERE / f"{name}.session"
            save_session(target, manifest, run.log, framed=framed)
            path = target.name
        expected[name] = {
            "path": path,
            "kind": kind,
            "benchmark": benchmark,
            "seed": 2018,
            "attack": attack,
            "max_instructions": budget,
            "sentinel_records": sentinel,
            "framed": framed,
            "records": len(run.log),
            "alarms": run.metrics.alarms,
            "stop_reason": run.stop_reason,
            "log_sha256": hashlib.sha256(log_bytes).hexdigest(),
            "final_digest": end.digest,
            "verdicts": _verdicts(spec, run.log),
        }
        print(f"{name}: {len(run.log)} records, "
              f"{expected[name]['alarms']} alarms, "
              f"verdicts={expected[name]['verdicts']}")
    return expected


def main() -> int:
    expected = generate()
    out = HERE / "expected.json"
    out.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
