"""Tests for the programmatic and text assemblers."""

import pytest

from repro.errors import AssemblerError
from repro.isa import Asm, Opcode, assemble_text, decode, disassemble


class TestAsmBuilder:
    def test_labels_resolve_forward_and_backward(self):
        asm = Asm(base=0x10)
        asm.jmp("end")
        asm.label("loop")
        asm.jmp("loop")
        asm.label("end")
        asm.nop()
        image = asm.assemble()
        assert decode(image.words[0]).imm == image.symbols["end"]
        assert decode(image.words[1]).imm == image.symbols["loop"]

    def test_label_offset_expressions(self):
        asm = Asm()
        asm.label("table")
        asm.word(1)
        asm.word(2)
        asm.li(0, "table+1")
        image = asm.assemble()
        assert decode(image.words[2]).imm == image.symbols["table"] + 1

    def test_duplicate_label_rejected(self):
        asm = Asm()
        asm.label("x")
        with pytest.raises(AssemblerError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Asm()
        asm.jmp("nowhere")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_function_ranges_recorded(self):
        asm = Asm(base=0x100)
        asm.begin_function("alpha")
        asm.nop()
        asm.ret()
        asm.end_function()
        asm.begin_function("beta")
        asm.ret()
        asm.end_function()
        image = asm.assemble()
        assert image.functions["alpha"] == (0x100, 0x102)
        assert image.functions["beta"] == (0x102, 0x103)
        assert image.function_at(0x101) == "alpha"
        assert image.function_at(0x102) == "beta"
        assert image.function_at(0x105) is None

    def test_unclosed_function_rejected(self):
        asm = Asm()
        asm.begin_function("open")
        asm.ret()
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_nested_function_rejected(self):
        asm = Asm()
        asm.begin_function("outer")
        with pytest.raises(AssemblerError):
            asm.begin_function("inner")

    def test_space_emits_fill_words(self):
        asm = Asm()
        asm.space(3, fill=7)
        assert asm.assemble().words == (7, 7, 7)

    def test_here_tracks_address(self):
        asm = Asm(base=5)
        assert asm.here == 5
        asm.nop()
        assert asm.here == 6


class TestTextAssembler:
    def test_basic_program(self):
        image = assemble_text(
            """
            start:  li r1, 42        ; comment
                    call fn
                    hlt
            fn:     addi r1, r1, 8
                    ret
            """,
            base=0x100,
        )
        assert image.symbols == {"start": 0x100, "fn": 0x103}
        assert decode(image.words[0]).op is Opcode.LI

    def test_register_aliases(self):
        image = assemble_text("mov sp, fp")
        instr = decode(image.words[0])
        assert instr.rd == 14
        assert instr.rs1 == 13

    def test_directives(self):
        image = assemble_text(
            """
            .word 0x1234
            .space 2
            .org 5
            nop
            """
        )
        assert image.words[:5] == (0x1234, 0, 0, 0, 0)
        assert decode(image.words[5]).op is Opcode.NOP

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_text(".space 4\n.org 1")

    def test_func_directive(self):
        image = assemble_text(
            """
            func main
                nop
                ret
            endfunc
            """
        )
        assert image.functions["main"] == (0, 2)

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble_text("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble_text("li r1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble_text("mov r99, r0")

    def test_hex_and_negative_immediates(self):
        image = assemble_text("li r0, 0x10\nli r1, -3")
        assert decode(image.words[0]).imm == 16
        assert decode(image.words[1]).imm == -3

    def test_disassembly_round_trips_through_text(self):
        source = "addi r1, r2, -5"
        image = assemble_text(source)
        assert disassemble(image.words[0]) == "addi r1, r2, -5"
