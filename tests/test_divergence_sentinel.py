"""The divergence sentinel: silent non-determinism becomes a typed error.

The recorder can emit a rolling CPU-state digest every N log records;
replayers recompute the chain and raise
:class:`~repro.errors.ReplayDivergenceError` on the first mismatch.  This
suite pins the three properties that make the sentinel trustworthy:

* **equivalence** — sentinels change nothing: the sequential phases and
  both pipeline backends produce byte-identical logs, identical final
  state, and the same verified-sentinel count, across a spread of
  workloads and seeds;
* **detection** — a record perturbed *under a valid frame CRC* (damage
  the transport integrity layer cannot see) trips the sentinel with the
  divergence bounded to one inter-sentinel window, on every replay path
  including across the CR process boundary;
* **zero cost off** — the default (``sentinel_records=None``) emits
  nothing: the log bytes are exactly the sentinel-free format.
"""

import pickle

import pytest

from repro.core.parallel import record_and_replay_pipelined
from repro.errors import ReplayDivergenceError
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.log import StreamingLogReader, StreamingLogWriter
from repro.rnr.records import SentinelRecord
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import build_workload, profile_by_name

BUDGET = 40_000
SENTINEL_EVERY = 12
CR_OPTIONS = CheckpointingOptions(period_s=0.2)


def _options(sentinel=SENTINEL_EVERY, budget=BUDGET):
    return RecorderOptions(max_instructions=budget,
                           sentinel_records=sentinel)


def _sentinel_count(log):
    return sum(isinstance(record, SentinelRecord)
               for record in log.records())


class TestSentinelRoundTrip:
    def test_recorder_emits_and_replayer_verifies(self):
        spec = build_workload(profile_by_name("apache"))
        recording = Recorder(spec, _options()).run()
        emitted = _sentinel_count(recording.log)
        assert emitted > 0
        result = CheckpointingReplayer(spec, recording.log,
                                       CR_OPTIONS).run_to_end()
        assert result.replay.reached_end
        assert result.sentinels_verified == emitted

    def test_default_is_off_and_free(self):
        # No sentinel option -> not one sentinel record in the log, and
        # the bytes equal a second sentinel-free recording exactly (the
        # feature leaves zero residue when disabled).
        spec = build_workload(profile_by_name("apache"))
        plain = Recorder(spec, _options(sentinel=None)).run()
        again = Recorder(build_workload(profile_by_name("apache")),
                         RecorderOptions(max_instructions=BUDGET)).run()
        assert _sentinel_count(plain.log) == 0
        assert plain.log.to_bytes() == again.log.to_bytes()
        result = CheckpointingReplayer(spec, plain.log,
                                       CR_OPTIONS).run_to_end()
        assert result.sentinels_verified == 0


class TestDifferentialEquivalence:
    """Sequential vs pipelined, sentinels on: everything must match."""

    CASES = [
        ("apache", 2018, 30_000),
        ("apache", 7, 30_000),
        ("fileio", 2018, 30_000),
        ("make", 11, 30_000),
        ("mysql", 2018, 40_000),
        ("radiosity", 3, 30_000),
    ]

    @pytest.mark.parametrize("workload,seed,budget", CASES)
    def test_thread_backend_matches_sequential(self, workload, seed,
                                               budget):
        spec = build_workload(profile_by_name(workload), seed=seed)
        options = _options(budget=budget)
        recording = Recorder(spec, options).run()
        replayer = CheckpointingReplayer(
            build_workload(profile_by_name(workload), seed=seed),
            recording.log, CR_OPTIONS)
        sequential = replayer.run_to_end()
        run = record_and_replay_pipelined(
            build_workload(profile_by_name(workload), seed=seed),
            options, CR_OPTIONS, backend="thread",
            frame_records=8, queue_depth=4,
        )
        assert run.recording.log.to_bytes() == recording.log.to_bytes()
        assert (run.checkpointing.sentinels_verified
                == sequential.sentinels_verified
                == _sentinel_count(recording.log))
        assert (run.final_cpu_state
                == replayer.machine.cpu.capture_state())

    def test_process_backend_matches_sequential(self):
        spec = build_workload(profile_by_name("apache"))
        recording = Recorder(spec, _options()).run()
        sequential = CheckpointingReplayer(
            build_workload(profile_by_name("apache")),
            recording.log, CR_OPTIONS).run_to_end()
        run = record_and_replay_pipelined(
            build_workload(profile_by_name("apache")),
            _options(), CR_OPTIONS, backend="process",
            frame_records=8, queue_depth=4,
        )
        assert run.recording.log.to_bytes() == recording.log.to_bytes()
        assert (run.checkpointing.sentinels_verified
                == sequential.sentinels_verified)


def _perturbed_log(recording, plan):
    """Reframe the recorded log and damage it exactly as ``plan`` says.

    The perturbed record is re-encoded under a fresh, *valid* CRC: the
    transport accepts every frame, only replay can notice.
    """
    frames = []
    writer = StreamingLogWriter(8, on_frame=frames.append)
    for record in recording.log.records():
        writer.append(record)
    writer.finish()
    reader = StreamingLogReader()
    for index, frame in enumerate(frames):
        reader.feed(plan.apply_to_frame(index, frame))
    return reader.to_log()


@pytest.fixture(scope="module")
def sentinel_visible_plan():
    """A fault plan whose perturbation a *sentinel* catches.

    Not every perturbed value survives until the next sentinel snapshot —
    a register the workload immediately overwrites only shows up in the
    final full-state digest.  Scan frames deterministically for one whose
    perturbation the sentinel chain sees (window attached), so the
    detection tests pin the bounded-window contract, not luck.
    """
    spec = build_workload(profile_by_name("apache"))
    recording = Recorder(spec, _options()).run()
    frame_count = (len(recording.log) + 7) // 8
    for target in range(frame_count):
        plan = FaultPlan([FaultSpec(FaultKind.PERTURB_RECORD,
                                    target=target)])
        damaged = _perturbed_log(recording, plan)
        if damaged.to_bytes() == recording.log.to_bytes():
            continue  # the frame had nothing perturbable
        try:
            CheckpointingReplayer(
                build_workload(profile_by_name("apache")),
                damaged, CR_OPTIONS).run_to_end()
        except ReplayDivergenceError as error:
            if error.window is not None:
                return recording, plan
    pytest.fail("no frame produced a sentinel-visible perturbation")


class TestDivergenceDetection:
    """A perturbed record under a valid CRC must trip the sentinel."""

    def test_sequential_replay_trips_on_perturbed_log(
            self, sentinel_visible_plan):
        recording, plan = sentinel_visible_plan
        damaged = _perturbed_log(recording, plan)
        assert damaged.to_bytes() != recording.log.to_bytes()
        with pytest.raises(ReplayDivergenceError) as excinfo:
            CheckpointingReplayer(
                build_workload(profile_by_name("apache")),
                damaged, CR_OPTIONS).run_to_end()
        self._check_window(excinfo.value)

    def test_pipelined_thread_backend_trips(self, sentinel_visible_plan):
        _, plan = sentinel_visible_plan
        with pytest.raises(ReplayDivergenceError) as excinfo:
            record_and_replay_pipelined(
                build_workload(profile_by_name("apache")),
                _options(), CR_OPTIONS, backend="thread",
                frame_records=8, queue_depth=4, fault_plan=plan,
            )
        self._check_window(excinfo.value)

    def test_pipelined_process_backend_trips_with_type_intact(
            self, sentinel_visible_plan):
        # The CR lives in another process here: the divergence must cross
        # the pipe as the same typed error, digests and window included —
        # not as a HypervisorError wrapping a traceback string.
        _, plan = sentinel_visible_plan
        with pytest.raises(ReplayDivergenceError) as excinfo:
            record_and_replay_pipelined(
                build_workload(profile_by_name("apache")),
                _options(), CR_OPTIONS, backend="process",
                frame_records=8, queue_depth=4, fault_plan=plan,
            )
        self._check_window(excinfo.value)

    def test_perturbation_invisible_to_sentinel_still_caught(self):
        # Even when the damaged value dies before the next sentinel, the
        # final full-state digest must still refuse the replay — silent
        # acceptance is never an outcome.
        spec = build_workload(profile_by_name("apache"))
        recording = Recorder(spec, _options()).run()
        frame_count = (len(recording.log) + 7) // 8
        for target in range(frame_count):
            plan = FaultPlan([FaultSpec(FaultKind.PERTURB_RECORD,
                                        target=target)])
            damaged = _perturbed_log(recording, plan)
            if damaged.to_bytes() == recording.log.to_bytes():
                continue
            with pytest.raises(ReplayDivergenceError):
                CheckpointingReplayer(
                    build_workload(profile_by_name("apache")),
                    damaged, CR_OPTIONS).run_to_end()
            return
        pytest.fail("no frame was perturbable at all")

    @staticmethod
    def _check_window(error: ReplayDivergenceError):
        assert error.expected_digest is not None
        assert error.actual_digest is not None
        assert error.expected_digest != error.actual_digest
        assert error.window is not None
        low, high = error.window
        assert low < high
        assert error.icount == high

    def test_alarm_replayers_tolerate_sentinel_logs(self):
        # An AR starts mid-log from a checkpoint, so its chain state can
        # never match the recorder's — it must consume sentinel records
        # without judging them.  (Regression: ARs used to verify the
        # chain and raise a false divergence on every sentinel log.)
        from repro.core.parallel import resolve_alarms_parallel

        def verdicts(sentinel):
            spec = build_workload(profile_by_name("mysql"))
            recording = Recorder(
                spec, _options(sentinel=sentinel, budget=120_000)).run()
            checkpointing = CheckpointingReplayer(
                spec, recording.log, CR_OPTIONS).run_to_end()
            assert checkpointing.pending_alarms
            resolution = resolve_alarms_parallel(
                spec, recording.log, checkpointing.pending_alarms,
                store=checkpointing.store, backend="thread",
            )
            return [(v.kind, v.benign_cause) for v in resolution.verdicts]

        # Sentinel emission costs recorded cycles, so alarm *icounts*
        # legitimately shift a little between the two recordings; the
        # classifications must not.
        assert verdicts(sentinel=SENTINEL_EVERY) == verdicts(sentinel=None)

    def test_divergence_error_pickles_intact(self):
        # Worker pools and the CR process ship this exception by pickle;
        # the structured fields must survive the round trip.
        error = ReplayDivergenceError(
            "sentinel digest mismatch", icount=420,
            expected_digest=0x1234, actual_digest=0x4321,
            window=(400, 420),
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ReplayDivergenceError)
        assert clone.window == (400, 420)
        assert clone.expected_digest == 0x1234
        assert clone.actual_digest == 0x4321
        assert str(clone) == str(error)
