"""Tests for log records, binary serialization, and cursors."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.exits import RopAlarmKind
from repro.errors import LogError
from repro.rnr import (
    AlarmRecord,
    DiskDmaRecord,
    EndRecord,
    EvictRecord,
    InputLog,
    InterruptRecord,
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    is_async_record,
    parse_record,
    record_size_bytes,
    serialize_record,
)

SAMPLE_RECORDS = [
    RdtscRecord(value=12345),
    RdrandRecord(value=2**63),
    PioInRecord(port=11, value=1),
    MmioReadRecord(addr=0x0F00_0000, value=42),
    InterruptRecord(icount=999, vector=3),
    DiskDmaRecord(icount=1000, block=17, addr=0x3000),
    NetworkDmaRecord(icount=1001, addr=0x6000, words=(1, 2, 3)),
    EvictRecord(icount=1002, tid=2, value=0x1234),
    EvictRecord(icount=1003, tid=-1, value=5),
    AlarmRecord(icount=1004, kind=RopAlarmKind.MISMATCH, pc=0x11F7,
                predicted=0x1100, actual=0x1162, tid=1),
    AlarmRecord(icount=1005, kind=RopAlarmKind.UNDERFLOW, pc=0x118C,
                predicted=None, actual=0x118C, tid=-1),
    AlarmRecord(icount=1006, kind=RopAlarmKind.JOP, pc=0x1111,
                predicted=None, actual=0x2222, tid=0),
    EndRecord(icount=5000, digest=0xDEADBEEF),
]


class TestSerialization:
    @pytest.mark.parametrize("record", SAMPLE_RECORDS,
                             ids=lambda r: type(r).__name__ + str(id(r) % 97))
    def test_round_trip(self, record):
        data = serialize_record(record)
        parsed, offset = parse_record(data)
        assert parsed == record
        assert offset == len(data)

    def test_size_matches_serialization(self):
        for record in SAMPLE_RECORDS:
            assert record_size_bytes(record) == len(serialize_record(record))

    def test_network_payload_dominates_size(self):
        small = NetworkDmaRecord(icount=1, addr=2, words=(1,))
        big = NetworkDmaRecord(icount=1, addr=2, words=tuple(range(1, 301)))
        assert record_size_bytes(big) > 100 * record_size_bytes(small) / 10

    def test_parse_garbage_rejected(self):
        with pytest.raises(LogError):
            parse_record(b"\xff\x01\x02")

    def test_parse_truncated_rejected(self):
        data = serialize_record(NetworkDmaRecord(icount=1, addr=2,
                                                 words=(9, 9, 9)))
        with pytest.raises(LogError):
            parse_record(data[:-2])

    @given(
        icount=st.integers(0, 2**40),
        addr=st.integers(0, 2**32),
        words=st.lists(st.integers(0, 2**64 - 1), max_size=20),
    )
    def test_network_record_round_trip_property(self, icount, addr, words):
        record = NetworkDmaRecord(icount=icount, addr=addr,
                                  words=tuple(words))
        parsed, _ = parse_record(serialize_record(record))
        assert parsed == record

    @given(value=st.integers(0, 2**64 - 1))
    def test_rdtsc_round_trip_property(self, value):
        parsed, _ = parse_record(serialize_record(RdtscRecord(value=value)))
        assert parsed == RdtscRecord(value=value)


class TestAsyncClassification:
    def test_sync_records(self):
        for record in (RdtscRecord(1), RdrandRecord(1),
                       PioInRecord(1, 2), MmioReadRecord(1, 2)):
            assert not is_async_record(record)

    def test_async_records(self):
        for record in SAMPLE_RECORDS[4:]:
            assert is_async_record(record)


class TestInputLog:
    def test_append_and_size(self):
        log = InputLog()
        size = log.append(RdtscRecord(value=5))
        assert size > 0
        assert log.total_bytes == size
        assert len(log) == 1

    def test_whole_log_round_trip(self):
        log = InputLog()
        for record in SAMPLE_RECORDS:
            log.append(record)
        parsed = InputLog.from_bytes(log.to_bytes())
        assert parsed.records() == log.records()
        assert parsed.total_bytes == log.total_bytes

    def test_bytes_between(self):
        log = InputLog()
        sizes = [log.append(record) for record in SAMPLE_RECORDS]
        assert log.bytes_between(0, len(log)) == sum(sizes)
        assert log.bytes_between(2, 4) == sizes[2] + sizes[3]
        assert log.bytes_between(3, 3) == 0


class TestCursor:
    def _log(self):
        log = InputLog()
        log.append(RdtscRecord(value=1))
        log.append(InterruptRecord(icount=2, vector=3))
        return log

    def test_peek_pop(self):
        cursor = self._log().cursor()
        assert cursor.peek() == RdtscRecord(value=1)
        assert cursor.pop() == RdtscRecord(value=1)
        assert cursor.pop() == InterruptRecord(icount=2, vector=3)
        assert cursor.peek() is None

    def test_pop_past_end_raises(self):
        cursor = self._log().cursor(position=2)
        with pytest.raises(LogError):
            cursor.pop()

    def test_expect_type_mismatch(self):
        cursor = self._log().cursor()
        with pytest.raises(LogError):
            cursor.expect(InterruptRecord)

    def test_clone_is_independent(self):
        cursor = self._log().cursor()
        clone = cursor.clone()
        cursor.pop()
        assert clone.position == 0
        assert cursor.position == 1

    def test_cursor_from_position(self):
        cursor = self._log().cursor(position=1)
        assert isinstance(cursor.peek(), InterruptRecord)
