"""Tests for the hot-path execution overhaul.

Covers the contracts the performance layer leans on: sorted checkpoint
stores (bisect lookups), clean permission restores (array-backed pages),
checkpoint-restore equivalence with straight-line replay (overlay cache and
copy-on-write page sharing), and backend-independent parallel alarm
resolution.
"""

import pytest

from repro.core.parallel import resolve_alarms_parallel
from repro.cpu.state import CpuState
from repro.errors import CheckpointError, MemoryError_
from repro.memory.paging import PERM_READ, PERM_WRITE
from repro.memory.physical import PhysicalMemory
from repro.replay.alarm import AlarmReplayer
from repro.replay.base import DeterministicReplayer
from repro.replay.checkpoint import CheckpointStore
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import build_workload, profile_by_name

BUDGET = 120_000


@pytest.fixture(scope="module")
def mysql_recording():
    """One mysql recording plus its CR replay (the alarm-rich workload)."""
    spec = build_workload(profile_by_name("mysql"))
    run = Recorder(spec, RecorderOptions(max_instructions=BUDGET)).run()
    cr = CheckpointingReplayer(
        spec, run.log, CheckpointingOptions(period_s=0.2)
    ).run_to_end()
    return spec, run, cr


# ----------------------------------------------------------------------
# satellite: restore_perms must not leave stale pages behind
# ----------------------------------------------------------------------


class TestRestorePerms:
    def test_dropped_pages_are_unmapped_after_restore(self):
        memory = PhysicalMemory(page_size=16)
        memory.map_range(0, 16, PERM_READ | PERM_WRITE)
        before = memory.perms_snapshot()
        # Map and populate a second page after the snapshot.
        memory.map_range(16, 16, PERM_READ | PERM_WRITE)
        memory.write_word(16, 0xDEAD)
        memory.restore_perms(before)
        assert not memory.is_mapped(16)
        with pytest.raises(MemoryError_):
            memory.read_word(16)
        # The dropped page must not linger in the dirty set either.
        assert 1 not in memory.dirty_pages()

    def test_restore_rematerializes_missing_pages_zeroed(self):
        memory = PhysicalMemory(page_size=16)
        memory.map_range(0, 32, PERM_READ | PERM_WRITE)
        before = memory.perms_snapshot()
        memory.write_word(16, 7)
        memory.restore_perms(before)
        # Still mapped (present in the restored map), content untouched.
        assert memory.read_word(16) == 7
        # A page present in the perms map but never materialized reappears
        # zero-filled.
        restored = dict(before)
        restored[5] = PERM_READ
        memory.restore_perms(restored)
        assert memory.read_word(5 * 16) == 0

    def test_restore_bumps_version(self):
        memory = PhysicalMemory(page_size=16)
        memory.map_range(0, 16, PERM_READ | PERM_WRITE)
        before = memory.perms_snapshot()
        version = memory.version
        memory.restore_perms(before)
        assert memory.version > version


# ----------------------------------------------------------------------
# satellite: the checkpoint store must stay icount-sorted
# ----------------------------------------------------------------------


def _add(store: CheckpointStore, icount: int, pages=None):
    return store.add(
        icount=icount,
        cycles=icount,
        cpu_state=CpuState(
            regs=(0,) * 16, pc=0, zero=False, negative=False,
            user=False, int_enabled=False, icount=icount, halted=False,
        ),
        pages=dict(pages or {}),
        disk_blocks={},
        backras={},
        current_tid=0,
        log_position=0,
    )


class TestStoreOrdering:
    def test_add_rejects_decreasing_icount(self):
        store = CheckpointStore()
        _add(store, 100)
        with pytest.raises(CheckpointError):
            _add(store, 99)

    def test_add_accepts_equal_icount(self):
        store = CheckpointStore()
        _add(store, 100)
        _add(store, 100)
        assert len(store) == 2

    def test_latest_before_matches_linear_scan(self):
        store = CheckpointStore()
        icounts = [0, 10, 10, 25, 40, 40, 41, 90]
        for icount in icounts:
            _add(store, icount)
        for probe in range(-1, 100):
            expected = None
            for checkpoint in store.all():
                if checkpoint.icount <= probe:
                    expected = checkpoint
            assert store.latest_before(probe) is expected

    def test_overlay_cache_tracks_add_and_recycle(self):
        store = CheckpointStore()
        _add(store, 0, pages={1: (1, 1), 2: (2, 2)})
        _add(store, 10, pages={2: (20, 20)})
        second = store.latest()
        assert store.reconstruct_pages(second) == {
            1: (1, 1), 2: (20, 20),
        }
        third = _add(store, 20, pages={3: (3, 3)})
        assert store.reconstruct_pages(third) == {
            1: (1, 1), 2: (20, 20), 3: (3, 3),
        }
        # Recycling merges the oldest checkpoint forward and must not serve
        # stale memoized overlays afterwards.
        store.recycle_older_than(15, keep_at_least=1)
        assert store.recycled >= 1
        survivor = store.all()[0]
        assert store.reconstruct_pages(survivor)[1] == (1, 1)
        assert store.reconstruct_pages(third) == {
            1: (1, 1), 2: (20, 20), 3: (3, 3),
        }

    def test_reconstruct_rejects_foreign_checkpoint(self):
        store = CheckpointStore()
        _add(store, 0)
        other = CheckpointStore()
        foreign = _add(other, 0)
        with pytest.raises(CheckpointError):
            store.reconstruct_pages(foreign)


# ----------------------------------------------------------------------
# checkpoint-restore equivalence with straight-line replay
# ----------------------------------------------------------------------


class TestRestoreEquivalence:
    def test_restore_from_every_checkpoint_reaches_identical_state(
            self, mysql_recording):
        """Property: resume from ANY checkpoint == straight-line replay.

        Guards the overlay cache and the COW page sharing: a stale or
        aliased page would surface as a diverged digest or CpuState.
        """
        spec, run, cr = mysql_recording
        straight = DeterministicReplayer(spec, run.log.cursor())
        result = straight.run()
        assert result.reached_end and result.digest_checked
        final_state = straight.machine.cpu.capture_state()
        assert len(cr.store) >= 2
        for checkpoint in cr.store.all():
            resumed = DeterministicReplayer(spec, run.log.cursor())
            resumed.restore_checkpoint(checkpoint, cr.store)
            resumed_result = resumed.run()
            assert resumed_result.reached_end
            assert resumed_result.digest_checked
            assert resumed.machine.cpu.capture_state() == final_state

    def test_ar_verdict_identical_from_checkpoint_and_from_start(
            self, mysql_recording):
        spec, run, cr = mysql_recording
        assert cr.pending_alarms, "mysql workload must raise alarms"
        alarm = cr.pending_alarms[0]
        from_start = AlarmReplayer(spec, run.log, alarm).analyze()
        eligible = [c for c in cr.store.all() if c.icount <= alarm.icount]
        assert eligible
        for checkpoint in eligible:
            from_checkpoint = AlarmReplayer(
                spec, run.log, alarm,
                checkpoint=checkpoint, store=cr.store,
            ).analyze()
            assert from_checkpoint.kind is from_start.kind
            assert from_checkpoint.benign_cause is from_start.benign_cause
            assert from_checkpoint.expected_target == from_start.expected_target
            assert from_checkpoint.observed_target == from_start.observed_target
            assert from_checkpoint.tid == from_start.tid


# ----------------------------------------------------------------------
# parallel AR backends
# ----------------------------------------------------------------------


class TestParallelBackends:
    def test_thread_and_process_verdicts_identical_and_ordered(
            self, mysql_recording):
        spec, run, cr = mysql_recording
        assert len(cr.pending_alarms) >= 2
        threaded = resolve_alarms_parallel(
            spec, run.log, cr.pending_alarms, store=cr.store,
            backend="thread",
        )
        processed = resolve_alarms_parallel(
            spec, run.log, cr.pending_alarms, store=cr.store,
            backend="process",
        )
        assert threaded.backend == "thread"
        # Verdict order must match alarm order on both backends.
        for resolution in (threaded, processed):
            assert [v.alarm.icount for v in resolution.verdicts] == \
                [a.icount for a in cr.pending_alarms]
        assert threaded.verdicts == processed.verdicts

    def test_config_selects_backend(self, mysql_recording):
        spec, run, cr = mysql_recording
        assert spec.config.ar_backend == "thread"
        resolution = resolve_alarms_parallel(
            spec, run.log, cr.pending_alarms, store=cr.store,
        )
        assert resolution.backend in ("thread", "inline")

    def test_unknown_backend_rejected(self, mysql_recording):
        spec, run, cr = mysql_recording
        from repro.errors import HypervisorError

        with pytest.raises(HypervisorError):
            resolve_alarms_parallel(
                spec, run.log, cr.pending_alarms, store=cr.store,
                backend="fiber",
            )

    def test_zero_and_single_alarm_run_inline(self, mysql_recording,
                                              monkeypatch):
        spec, run, cr = mysql_recording
        import repro.core.parallel as parallel_mod

        def boom(*args, **kwargs):
            raise AssertionError("executor must not start for <= 1 alarm")

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", boom)
        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        empty = resolve_alarms_parallel(spec, run.log, [], store=cr.store)
        assert empty.verdicts == () and empty.backend == "inline"
        single = resolve_alarms_parallel(
            spec, run.log, cr.pending_alarms[:1], store=cr.store,
            backend="process",
        )
        assert single.backend == "inline"
        assert len(single.verdicts) == 1
