"""Tests for the device models and the host world."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.devices import (
    DISK_CMD_READ,
    DISK_CMD_WRITE,
    DISK_STATUS_BUSY,
    DISK_STATUS_READY,
    IRQ_DISK,
    IRQ_NIC,
    IRQ_TIMER,
    ConsoleDevice,
    DiskDevice,
    HostWorld,
    InterruptController,
    NetworkDevice,
    Packet,
    TimerDevice,
    VirtualDisk,
)
from repro.devices.bus import NIC_REG_RX_ADDR, NIC_REG_RX_LEN, NIC_REG_RX_PENDING, NIC_REG_RX_RING
from repro.errors import DeviceError
from repro.memory import PERM_READ, PERM_WRITE, PhysicalMemory


def make_world(seed=1):
    from dataclasses import replace

    return HostWorld(DEFAULT_CONFIG, seed=seed)


class TestHostWorld:
    def test_tsc_is_monotonic(self):
        world = make_world()
        values = [world.tsc(cycle) for cycle in range(0, 1000, 100)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_tsc_reproducible_per_seed(self):
        first = [make_world(7).tsc(i) for i in range(5)]
        second = [make_world(7).tsc(i) for i in range(5)]
        assert first == second

    def test_random_word_differs_across_seeds(self):
        assert make_world(1).random_word() != make_world(2).random_word()

    def test_event_queue_ordering(self):
        world = make_world()
        fired = []
        world.schedule(30, lambda: fired.append("c"))
        world.schedule(10, lambda: fired.append("a"))
        world.schedule(20, lambda: fired.append("b"))
        assert world.next_due == 10
        world.run_due(25)
        assert fired == ["a", "b"]
        assert world.next_due == 30
        world.run_due(100)
        assert fired == ["a", "b", "c"]
        assert world.next_due is None

    def test_same_cycle_events_fire_fifo(self):
        world = make_world()
        fired = []
        world.schedule(5, lambda: fired.append(1))
        world.schedule(5, lambda: fired.append(2))
        world.run_due(5)
        assert fired == [1, 2]

    def test_latency_bounds(self):
        world = make_world()
        for _ in range(50):
            assert 10 <= world.latency(10, 20) <= 20


class TestInterruptController:
    def test_fifo_delivery(self):
        intc = InterruptController()
        intc.raise_irq(IRQ_DISK)
        intc.raise_irq(IRQ_NIC)
        assert intc.take() == IRQ_DISK
        assert intc.take() == IRQ_NIC
        assert not intc.has_pending

    def test_coalescing(self):
        intc = InterruptController()
        intc.raise_irq(IRQ_NIC)
        intc.raise_irq(IRQ_NIC)
        assert intc.take() == IRQ_NIC
        assert not intc.has_pending
        assert intc.raised_count == 2

    def test_clear(self):
        intc = InterruptController()
        intc.raise_irq(IRQ_TIMER)
        intc.clear()
        assert not intc.has_pending


class TestTimer:
    def test_periodic_ticks(self):
        world = make_world()
        intc = InterruptController()
        timer = TimerDevice(world, intc, period_cycles=100, jitter_cycles=0)
        timer.start(0)
        world.run_due(350)
        assert timer.ticks == 3
        assert intc.has_pending

    def test_stop_silences(self):
        world = make_world()
        intc = InterruptController()
        timer = TimerDevice(world, intc, period_cycles=100)
        timer.start(0)
        world.run_due(150)
        timer.stop()
        world.run_due(1000)
        assert timer.ticks == 1

    def test_jitter_stays_bounded(self):
        world = make_world()
        intc = InterruptController()
        timer = TimerDevice(world, intc, period_cycles=100, jitter_cycles=10)
        timer.start(0)
        world.run_due(10_000)
        # With jitter <= 10% the tick count stays near the ideal rate.
        assert 85 <= timer.ticks <= 100


class TestVirtualDisk:
    def test_synthesized_content_is_deterministic(self):
        assert VirtualDisk(16, 7).read_block(3) == VirtualDisk(16, 7).read_block(3)

    def test_different_seeds_differ(self):
        assert VirtualDisk(16, 7).read_block(3) != VirtualDisk(16, 8).read_block(3)

    def test_write_read_round_trip(self):
        disk = VirtualDisk(4, 1)
        disk.write_block(9, [1, 2, 3, 4])
        assert disk.read_block(9) == [1, 2, 3, 4]

    def test_write_size_checked(self):
        with pytest.raises(DeviceError):
            VirtualDisk(4, 1).write_block(0, [1, 2])

    def test_dirty_tracking(self):
        disk = VirtualDisk(4, 1)
        disk.read_block(5)
        assert disk.dirty_blocks() == frozenset()
        disk.write_block(5, [0] * 4)
        assert disk.dirty_blocks() == {5}
        disk.clear_dirty()
        assert disk.dirty_blocks() == frozenset()

    def test_snapshot_restore(self):
        disk = VirtualDisk(4, 1)
        disk.write_block(2, [9, 9, 9, 9])
        snapshot = disk.snapshot_blocks([2])
        disk.write_block(2, [0, 0, 0, 0])
        disk.restore_blocks(snapshot)
        assert disk.read_block(2) == [9, 9, 9, 9]

    @given(block=st.integers(0, 1000))
    def test_replica_agreement(self, block):
        """Recorder disk and replayer replica must agree on pristine data."""
        assert (VirtualDisk(8, 42).read_block(block)
                == VirtualDisk(8, 42).read_block(block))


def make_disk_rig(with_world=True):
    memory = PhysicalMemory(page_size=256)
    memory.map_range(0, 1024, PERM_READ | PERM_WRITE)
    world = make_world() if with_world else None
    intc = InterruptController()
    disk = VirtualDisk(DEFAULT_CONFIG.disk_block_size, 3)
    device = DiskDevice(disk, memory, intc, world)
    return memory, world, intc, disk, device


class TestDiskDevice:
    def test_read_lands_at_flush(self):
        memory, world, intc, disk, device = make_disk_rig()
        device.pio_write("block", 5, 0)
        device.pio_write("addr", 256, 0)
        device.pio_write("cmd", DISK_CMD_READ, 0)
        assert device.pio_read_status() == DISK_STATUS_BUSY
        world.run_due(100_000)
        assert intc.has_pending
        assert device.pio_read_status() == DISK_STATUS_READY
        # Data has NOT landed yet: it lands with the interrupt.
        assert memory.read_word(256) == 0
        landed = device.flush_dma()
        assert landed == [(5, 256)]
        assert memory.read_block(256, 256) == disk.read_block(5)

    def test_write_applies_synchronously(self):
        memory, world, intc, disk, device = make_disk_rig()
        memory.write_block(512, list(range(256)))
        device.pio_write("block", 8, 0)
        device.pio_write("addr", 512, 0)
        device.pio_write("cmd", DISK_CMD_WRITE, 0)
        assert disk.read_block(8) == list(range(256))
        world.run_due(100_000)
        assert intc.has_pending

    def test_replay_mode_read_is_inert(self):
        memory, world, intc, disk, device = make_disk_rig(with_world=False)
        device.pio_write("block", 5, 0)
        device.pio_write("addr", 256, 0)
        device.pio_write("cmd", DISK_CMD_READ, 0)
        assert device.pio_read_status() == DISK_STATUS_READY
        assert not intc.has_pending
        assert device.reads == 1

    def test_replay_mode_write_updates_replica(self):
        memory, world, intc, disk, device = make_disk_rig(with_world=False)
        memory.write_block(512, [7] * 256)
        device.pio_write("block", 2, 0)
        device.pio_write("addr", 512, 0)
        device.pio_write("cmd", DISK_CMD_WRITE, 0)
        assert disk.read_block(2) == [7] * 256

    def test_unknown_command_rejected(self):
        _, _, _, _, device = make_disk_rig()
        with pytest.raises(DeviceError):
            device.pio_write("cmd", 99, 0)

    def test_reg_capture_restore(self):
        _, _, _, _, device = make_disk_rig()
        device.pio_write("block", 3, 0)
        device.pio_write("addr", 17, 0)
        device.pio_write("param", 5, 0)
        regs = device.capture_regs()
        device.pio_write("block", 0, 0)
        device.restore_regs(regs)
        assert device.capture_regs() == (3, 17, 5)


def make_nic_rig(ring_words=64):
    memory = PhysicalMemory(page_size=256)
    memory.map_range(0, 1024, PERM_READ | PERM_WRITE)
    intc = InterruptController()
    nic = NetworkDevice(memory, intc, ring_words=ring_words)
    nic.mmio_write(NIC_REG_RX_RING, 128)
    return memory, intc, nic


class TestNetworkDevice:
    def test_packet_lands_in_ring_at_flush(self):
        memory, intc, nic = make_nic_rig()
        nic.deliver_packet(Packet(words=(1, 2, 3)))
        assert intc.has_pending
        landed = nic.flush_dma()
        assert landed == [(128, (1, 2, 3))]
        assert memory.read_block(128, 3) == [1, 2, 3]

    def test_mmio_consume_protocol(self):
        memory, intc, nic = make_nic_rig()
        nic.deliver_packet(Packet(words=(5, 6)))
        nic.flush_dma()
        assert nic.mmio_read(NIC_REG_RX_PENDING) == 1
        assert nic.mmio_read(NIC_REG_RX_LEN) == 2
        assert nic.mmio_read(NIC_REG_RX_ADDR) == 128
        assert nic.mmio_read(NIC_REG_RX_PENDING) == 0

    def test_ring_wraps(self):
        memory, intc, nic = make_nic_rig(ring_words=8)
        nic.deliver_packet(Packet(words=(1,) * 6))
        nic.flush_dma()
        nic.mmio_read(NIC_REG_RX_ADDR)
        nic.deliver_packet(Packet(words=(2,) * 6))
        nic.flush_dma()
        assert nic.mmio_read(NIC_REG_RX_ADDR) == 128  # wrapped to the base

    def test_oversized_packet_rejected(self):
        memory, intc, nic = make_nic_rig(ring_words=4)
        nic.deliver_packet(Packet(words=(0,) * 8))
        with pytest.raises(DeviceError):
            nic.flush_dma()

    def test_flush_without_ring_ok_when_empty(self):
        memory = PhysicalMemory(page_size=256)
        memory.map_range(0, 256, PERM_READ | PERM_WRITE)
        nic = NetworkDevice(memory, InterruptController())
        assert nic.flush_dma() == []

    def test_flush_without_ring_fails_with_traffic(self):
        memory = PhysicalMemory(page_size=256)
        memory.map_range(0, 256, PERM_READ | PERM_WRITE)
        nic = NetworkDevice(memory, InterruptController())
        nic.deliver_packet(Packet(words=(1,)))
        with pytest.raises(DeviceError):
            nic.flush_dma()

    def test_stats(self):
        memory, intc, nic = make_nic_rig()
        nic.deliver_packet(Packet(words=(1, 2)))
        nic.deliver_packet(Packet(words=(3,)))
        nic.flush_dma()
        assert nic.packets_received == 2
        assert nic.words_received == 3


class TestConsole:
    def test_collects_text(self):
        console = ConsoleDevice()
        for char in b"ok":
            console.pio_write(char)
        assert console.text == "ok"

    def test_clear(self):
        console = ConsoleDevice()
        console.pio_write(65)
        console.clear()
        assert console.text == ""
