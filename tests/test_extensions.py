"""Tests for the extension features: attack variants, parallel ARs,
session persistence, and the CLI."""

import pytest

from repro.attacks import (
    ChainVariant,
    build_variant_chain,
    deliver_variant_attack,
)
from repro.core.parallel import resolve_alarms_parallel
from repro.replay import (
    AlarmReplayer,
    CheckpointingOptions,
    CheckpointingReplayer,
    DeterministicReplayer,
    VerdictKind,
)
from repro.rnr import SessionManifest, load_session, save_session
from repro.rnr.recorder import Recorder, RecorderOptions

from tests.conftest import cached_attack_recording, cached_recording, small_workload


class TestChainVariants:
    @pytest.fixture(scope="class")
    def kernel(self):
        from repro.workloads.suite import kernel_for_layout

        return kernel_for_layout()

    @pytest.mark.parametrize("variant", list(ChainVariant))
    def test_variant_builds(self, kernel, variant):
        chain = build_variant_chain(kernel, variant)
        assert chain.stack_words
        assert chain.description

    def test_ret2func_has_no_gadget_hops(self, kernel):
        chain = build_variant_chain(kernel, ChainVariant.RET2FUNC)
        assert chain.stack_words == (kernel.addr("set_root"),)

    def test_double_dispatch_reenters_the_triple(self, kernel):
        chain = build_variant_chain(kernel, ChainVariant.DOUBLE_DISPATCH)
        assert len(chain.stack_words) == 8
        assert chain.stack_words[0] == chain.stack_words[4]

    def test_sprayed_prepends_ret_slide(self, kernel):
        canonical = build_variant_chain(kernel, ChainVariant.CANONICAL)
        sprayed = build_variant_chain(kernel, ChainVariant.SPRAYED)
        assert sprayed.stack_words[-4:] == canonical.stack_words

    @pytest.mark.parametrize("variant", [ChainVariant.RET2FUNC,
                                         ChainVariant.DOUBLE_DISPATCH,
                                         ChainVariant.SPRAYED])
    def test_every_variant_raises_an_alarm_and_escalates(self, variant):
        """No false negatives, for any chain shape: the hijacked return
        always mispredicts, and the payload executes in continue mode."""
        attack = deliver_variant_attack(small_workload("apache"), variant)
        run = Recorder(
            attack.spec, RecorderOptions(max_instructions=2_500_000),
        ).run()
        first_hop = attack.chain.stack_words[0]
        assert any(alarm.actual == first_hop for alarm in run.alarms), \
            variant
        uid = run.machine.memory.read_word(
            attack.spec.kernel.layout.uid_addr,
        )
        assert uid == 0, f"{variant}: payload must have escalated"

    def test_variant_attack_confirmed_by_ar(self):
        attack = deliver_variant_attack(small_workload("apache"),
                                        ChainVariant.RET2FUNC)
        run = Recorder(
            attack.spec, RecorderOptions(max_instructions=2_500_000),
        ).run()
        hijack = next(alarm for alarm in run.alarms
                      if alarm.actual == attack.chain.stack_words[0])
        verdict = AlarmReplayer(attack.spec, run.log, hijack).analyze()
        assert verdict.kind is VerdictKind.ROP_CONFIRMED


class TestParallelAlarmReplay:
    def test_parallel_matches_sequential(self):
        spec, chain, run = cached_attack_recording()
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions()).run_to_end()
        parallel = resolve_alarms_parallel(
            spec, run.log, cr.pending_alarms, store=cr.store, max_workers=3,
        )
        sequential = []
        for alarm in cr.pending_alarms:
            checkpoint = cr.store.latest_before(alarm.icount)
            replayer = AlarmReplayer(spec, run.log, alarm,
                                     checkpoint=checkpoint, store=cr.store)
            sequential.append(replayer.analyze())
        assert [v.kind for v in parallel.verdicts] == \
            [v.kind for v in sequential]

    def test_aggregation_buckets(self):
        spec, chain, run = cached_attack_recording()
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions()).run_to_end()
        resolution = resolve_alarms_parallel(
            spec, run.log, cr.pending_alarms, store=cr.store,
        )
        total = (len(resolution.attacks) + len(resolution.false_positives)
                 + len(resolution.inconclusive))
        assert total == len(cr.pending_alarms)
        assert resolution.attacks  # the hijack is in there

    def test_empty_batch(self):
        spec, run = cached_recording("radiosity")
        resolution = resolve_alarms_parallel(spec, run.log, [])
        assert resolution.verdicts == ()


class TestSessionPersistence:
    def test_round_trip(self, tmp_path):
        spec, run = cached_recording("mysql")
        manifest = SessionManifest(benchmark="mysql", seed=2018)
        path = tmp_path / "session.rnr"
        save_session(path, manifest, run.log)
        loaded_manifest, loaded_log = load_session(path)
        assert loaded_manifest == manifest
        assert loaded_log.records() == run.log.records()

    def test_rebuilt_spec_replays_the_log(self, tmp_path):
        """The cross-machine story: nothing but the session file is
        needed to replay with full digest verification."""
        from repro.workloads import profile_by_name
        from repro.workloads.suite import build_workload

        spec = build_workload(profile_by_name("radiosity"), seed=77)
        run = Recorder(spec,
                       RecorderOptions(max_instructions=600_000)).run()
        path = tmp_path / "radiosity.rnr"
        save_session(path, SessionManifest(benchmark="radiosity", seed=77),
                     run.log)
        manifest, log = load_session(path)
        rebuilt = manifest.build_spec()
        result = DeterministicReplayer(rebuilt, log.cursor()).run()
        assert result.reached_end
        assert result.digest_checked

    def test_attack_manifests_rebuild(self):
        for attack in ("rop", "jop", "dos"):
            manifest = SessionManifest(benchmark="apache", seed=1,
                                       attack=attack)
            spec = manifest.build_spec()
            assert attack in spec.label

    def test_corrupt_file_rejected(self, tmp_path):
        from repro.errors import LogError

        path = tmp_path / "bogus.rnr"
        path.write_bytes(b"xx")
        with pytest.raises(LogError):
            load_session(path)

    def test_wrong_magic_rejected(self, tmp_path):
        import json

        from repro.errors import LogError

        path = tmp_path / "other.rnr"
        header = json.dumps({"magic": "something-else"}).encode()
        path.write_bytes(len(header).to_bytes(4, "big") + header)
        with pytest.raises(LogError):
            load_session(path)


class TestCli:
    def test_record_replay_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        session = tmp_path / "cli.rnr"
        assert main(["record", "radiosity", "--budget", "400000",
                     "--out", str(session)]) == 0
        assert main(["replay", str(session)]) == 0
        output = capsys.readouterr().out
        assert "digest verified=True" in output

    def test_gadgets_listing(self, capsys):
        from repro.cli import main

        assert main(["gadgets", "--kind", "pop_reg"]) == 0
        output = capsys.readouterr().out
        assert "pop r1; ret" in output

    def test_hunt_confirms_attack(self, capsys):
        from repro.cli import main

        assert main(["hunt", "apache", "--attack", "rop",
                     "--budget", "1200000"]) == 0
        output = capsys.readouterr().out
        assert "rop_confirmed" in output

    def test_bench_requires_saved_table(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "definitely_not_a_table"])
        assert code == 1

    def test_unknown_benchmark_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["record", "postgres"])


class TestUserModeRop:
    """§1's claim that RnR-Safe secures user contexts too, end to end."""

    @pytest.fixture(scope="class")
    def user_attack(self):
        from repro.attacks import deliver_user_rop_attack, user_rop_profile
        from repro.workloads.suite import build_workload
        from tests.conftest import small_profile

        profile = user_rop_profile(small_profile("apache"))
        attack = deliver_user_rop_attack(build_workload(profile))
        run = Recorder(
            attack.spec, RecorderOptions(max_instructions=2_500_000),
        ).run()
        return attack, run

    def test_payload_escalates_in_user_space(self, user_attack):
        attack, run = user_attack
        assert attack.escalated(run.machine.memory)

    def test_hijack_raises_a_user_mode_alarm(self, user_attack):
        attack, run = user_attack
        user_base = attack.spec.kernel.layout.user_code_base
        hijacks = [a for a in run.alarms if a.actual == attack.target]
        assert hijacks
        assert hijacks[0].pc >= user_base

    def test_ar_auto_scopes_to_user_and_confirms(self, user_attack):
        from repro.replay.alarm import TrapScope

        attack, run = user_attack
        hijack = next(a for a in run.alarms if a.actual == attack.target)
        replayer = AlarmReplayer(attack.spec, run.log, hijack)
        assert replayer.scope is TrapScope.ALL
        verdict = replayer.analyze()
        assert verdict.kind is VerdictKind.ROP_CONFIRMED

    def test_benign_user_parsing_raises_no_alarms(self):
        from repro.attacks import user_rop_profile
        from repro.workloads.suite import build_workload
        from tests.conftest import small_profile

        profile = user_rop_profile(small_profile("apache",
                                                 setjmp_every=0))
        spec = build_workload(profile)
        run = Recorder(spec,
                       RecorderOptions(max_instructions=2_500_000)).run()
        user_base = spec.kernel.layout.user_code_base
        # Benign messages terminate inside the parse buffer: no user
        # alarms at all (underflow alarms from the driver are kernel-side).
        assert all(a.pc < user_base for a in run.alarms)

    def test_user_attack_replays_deterministically(self, user_attack):
        attack, run = user_attack
        result = DeterministicReplayer(attack.spec, run.log.cursor()).run()
        assert result.reached_end and result.digest_checked

    def test_attack_requires_the_vulnerable_profile(self):
        from repro.attacks import deliver_user_rop_attack
        from repro.errors import AttackBuildError

        with pytest.raises(AttackBuildError):
            deliver_user_rop_attack(small_workload("apache"))
