"""Differential fuzzing of the trace-cache backend against the interpreter.

The ``trace`` execution backend is only allowed to be *faster* than the
reference interpreter — never different.  These tests drive both backends
over the same programs, batch schedules, and workloads and demand
bit-identical architectural outcomes: every VM exit, every register,
every flag, every icount, every log byte.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.cpu import Cpu, ExitControls
from repro.isa import Asm, Opcode
from repro.memory import (
    PERM_EXEC,
    PERM_READ,
    PERM_WRITE,
    PhysicalMemory,
)

CODE = 0x100
DATA = 0x1000
#: Top of the data region; the stack grows down into mapped memory.
STACK = DATA + 1024

_TRACE = dataclasses.replace(DEFAULT_CONFIG, exec_backend="trace")
_INTERP = dataclasses.replace(DEFAULT_CONFIG, exec_backend="interp")


def _machine(words, config, *, writable_code=False, controls=None,
             data=None):
    memory = PhysicalMemory(page_size=config.page_size,
                            enforce_wx=not writable_code)
    code_perms = PERM_READ | PERM_EXEC
    if writable_code:
        code_perms |= PERM_WRITE
    memory.map_range(CODE, 512, code_perms)
    memory.map_range(DATA, 1024, PERM_READ | PERM_WRITE)
    for offset, word in enumerate(words):
        memory.write_word(CODE + offset, word)
    for addr, word in (data or {}).items():
        memory.write_word(addr, word)
    cpu = Cpu(memory, config,
              controls=controls.copy() if controls else None)
    cpu.pc = CODE
    cpu.regs[14] = STACK
    return cpu


def _snapshot(cpu):
    """Architectural state plus the full contents of mapped memory."""
    pages = {index: tuple(page)
             for index, page in sorted(cpu.memory._pages.items())}
    return cpu.capture_state(), pages


def _lockstep(words, batches, *, budget=4000, controls=None,
              writable_code=False, data=None):
    """Run both backends over the same batch schedule, comparing the exit
    and the complete machine state after every single batch."""
    ref = _machine(words, _INTERP, writable_code=writable_code,
                   controls=controls, data=data)
    tr = _machine(words, _TRACE, writable_code=writable_code,
                  controls=controls, data=data)
    executed = 0
    index = 0
    while executed < budget:
        batch = batches[index % len(batches)]
        index += 1
        ref_exit = ref.run(batch)
        trace_exit = tr.run(batch)
        assert ref_exit == trace_exit, (ref_exit, trace_exit)
        assert _snapshot(ref) == _snapshot(tr)
        executed += batch
        if ref_exit is not None and ref_exit.reason.value in (
                "hlt", "triple_fault"):
            break
    return ref, tr


# ---------------------------------------------------------------------------
# property-based instruction soup
# ---------------------------------------------------------------------------

_SOUP_ALU = (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
             Opcode.XOR, Opcode.SHL, Opcode.SHR)


@st.composite
def _programs(draw):
    """Structured soup: ALU/flag/branch/memory/call-ret mixes whose
    branch targets stay inside (or just past) the program, so runs
    exercise translated loops, early branch exits, faults, RAS traffic,
    and plain halts in one strategy."""
    length = draw(st.integers(10, 40))
    asm = Asm(base=CODE)
    reg = st.integers(0, 13)  # keep sp (r14) for the stack ops
    for position in range(length):
        choice = draw(st.integers(0, 11))
        if choice == 0:
            asm.li(draw(reg), draw(st.integers(-(2**31), 2**31 - 1)))
        elif choice == 1:
            asm.emit(draw(st.sampled_from(_SOUP_ALU)), rd=draw(reg),
                     rs1=draw(reg), rs2=draw(reg))
        elif choice == 2:
            asm.emit(Opcode.ADDI, rd=draw(reg), rs1=draw(reg),
                     imm=draw(st.integers(-64, 64)))
        elif choice == 3:
            asm.cmp(draw(reg), draw(reg))
        elif choice == 4:
            asm.cmpi(draw(reg), draw(st.integers(-8, 8)))
        elif choice == 5:
            branch = draw(st.sampled_from(
                (Opcode.JZ, Opcode.JNZ, Opcode.JLT, Opcode.JGE,
                 Opcode.JMP)))
            asm.emit(branch, imm=CODE + draw(st.integers(0, length)))
        elif choice == 6:
            # In-range and occasionally out-of-range accesses: the
            # violation fault paths must match exactly too.
            asm.li(1, draw(st.integers(DATA, DATA + 1100)))
            asm.emit(draw(st.sampled_from((Opcode.LD, Opcode.ST))),
                     rd=draw(reg), rs1=1, rs2=draw(reg))
        elif choice == 7:
            asm.push(draw(reg))
        elif choice == 8:
            asm.pop(draw(reg))
        elif choice == 9:
            asm.emit(Opcode.CALL, imm=CODE + draw(st.integers(0, length)))
        elif choice == 10:
            asm.ret()
        else:
            asm.div(draw(reg), draw(reg), draw(reg))
    asm.hlt()
    return asm.assemble().words


class TestSoupLockstep:
    @settings(deadline=None, max_examples=50)
    @given(
        words=_programs(),
        batches=st.lists(st.integers(1, 97), min_size=1, max_size=6),
    )
    def test_soup_is_bit_identical(self, words, batches):
        _lockstep(words, batches, budget=3000)

    @settings(deadline=None, max_examples=25)
    @given(
        words=_programs(),
        batches=st.lists(st.integers(1, 97), min_size=1, max_size=6),
    )
    def test_soup_with_rop_alarms_armed(self, words, batches):
        # RAS mispredictions become ROP-alarm exits: the trace backend's
        # call/ret fast paths must surface the identical alarms.
        controls = ExitControls(ras_alarm_exits=True, ras_evict_exits=True)
        _lockstep(words, batches, budget=3000, controls=controls)

    @settings(deadline=None, max_examples=20)
    @given(words=st.lists(st.integers(0, 2**64 - 1), min_size=4,
                          max_size=48),
           batches=st.lists(st.integers(1, 61), min_size=1, max_size=4))
    def test_raw_word_soup_faults_identically(self, words, batches):
        # Mostly-undecodable words: fetch/decode faults, fault streaks,
        # and triple faults must fire at the same icounts.
        _lockstep(words, batches, budget=1500)


# ---------------------------------------------------------------------------
# batch-boundary exactness (interrupt delivery at every icount offset)
# ---------------------------------------------------------------------------

def _loop_program():
    asm = Asm(base=CODE)
    asm.li(1, 0)
    asm.li(2, 37)
    asm.label("loop")
    asm.emit(Opcode.ADDI, rd=1, rs1=1, imm=1)
    asm.push(1)
    asm.pop(3)
    asm.cmp(1, 2)
    asm.jnz("loop")
    asm.hlt()
    return asm.assemble().words


class TestBatchBoundaries:
    def test_every_batch_size_is_exact(self):
        """A dispatch must stop exactly at ``max_steps`` for *every*
        batch size — this is what lets the machine deliver interrupts at
        arbitrary icount offsets during replay.  Exercises every
        budget-bucket variant, the loop fuel counter, and mid-loop
        re-entry."""
        words = _loop_program()
        for batch in range(1, 48):
            ref, tr = _lockstep(words, [batch], budget=400)
            assert ref.icount == tr.icount

    def test_mixed_schedules(self):
        words = _loop_program()
        for schedule in ([1, 128, 3], [7, 2, 61], [97, 1, 1, 1]):
            _lockstep(words, schedule, budget=400)


# ---------------------------------------------------------------------------
# self-modifying code: invalidation and re-translation
# ---------------------------------------------------------------------------

class TestSelfModifyingCode:
    def test_smc_invalidates_and_retranslates(self):
        """A store into an executable page must flush stale translations:
        the rewritten instruction's new behaviour shows up on the very
        next execution, exactly as under the interpreter."""
        patch = Asm(base=0)
        patch.li(5, 99)
        new_word = patch.assemble().words[0]

        asm = Asm(base=CODE)
        asm.call("f")           # translate & execute the original callee
        asm.call("f")           # hot: cached block
        asm.li(6, DATA)
        asm.ld(1, 6)            # r1 = the replacement instruction word
        asm.li(2, "f")          # address of the target li
        asm.st(2, 1)            # rewrite f's first instruction
        asm.call("f")           # must observe li r5, 99
        asm.hlt()
        asm.label("f")
        asm.li(5, 1)
        asm.ret()
        words = asm.assemble().words

        ref, tr = _lockstep(words, [13, 128], budget=600,
                            writable_code=True,
                            data={DATA: new_word})
        assert ref.regs[5] == 99
        assert tr.regs[5] == 99
        stats = tr.backend.stats()
        assert stats["invalidations"] >= 1
        # The callee was translated, invalidated, and translated again.
        assert stats["blocks_translated"] > 0
        assert stats["fallback_steps"] == 0

    def test_smc_inside_hot_loop(self):
        """Rewriting code *between* dispatches of a hot loop re-translates
        rather than running the stale block."""
        patch = Asm(base=0)
        patch.emit(Opcode.ADDI, rd=3, rs1=3, imm=2)
        new_word = patch.assemble().words[0]

        asm = Asm(base=CODE)
        asm.li(1, 0)
        asm.li(2, 10)
        asm.li(3, 0)
        asm.label("loop")
        asm.emit(Opcode.ADDI, rd=3, rs1=3, imm=1)
        asm.emit(Opcode.ADDI, rd=1, rs1=1, imm=1)
        asm.cmp(1, 2)
        asm.jnz("loop")
        asm.li(6, DATA)
        asm.ld(4, 6)            # r4 = the replacement loop body
        asm.li(5, "loop")
        asm.st(5, 4)            # rewrite the hot loop's first instruction
        asm.li(1, 0)
        asm.jmp("loop")         # run the rewritten loop again
        words = asm.assemble().words
        # The second loop pass never halts (it re-enters the patch code);
        # the bounded budget just compares mid-flight states throughout.
        ref, tr = _lockstep(words, [9, 128, 2], budget=300,
                            writable_code=True,
                            data={DATA: new_word})
        assert ref.regs[3] == tr.regs[3]
        assert tr.backend.stats()["invalidations"] >= 1


# ---------------------------------------------------------------------------
# whole-system equivalence: recordings, replays, checkpoints
# ---------------------------------------------------------------------------

def _spec_with_backend(spec, backend):
    return dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, exec_backend=backend))


class TestSystemEquivalence:
    def test_recordings_are_byte_identical(self):
        """Recording the same workload under both backends produces the
        same log bytes — MMIO traffic, interrupts, sentinels and all —
        and identical final machine state."""
        from repro.rnr.recorder import Recorder, RecorderOptions
        from tests.conftest import small_workload

        spec = small_workload("apache")
        runs = {}
        for backend in ("interp", "trace"):
            recorder = Recorder(_spec_with_backend(spec, backend),
                                RecorderOptions(max_instructions=60_000))
            runs[backend] = recorder.run()
        assert runs["interp"].log.to_bytes() == runs["trace"].log.to_bytes()
        interp_cpu = runs["interp"].machine.cpu.capture_state()
        trace_cpu = runs["trace"].machine.cpu.capture_state()
        assert interp_cpu == trace_cpu

    def test_checkpointing_replay_matches(self):
        """CR-replaying one recording under both backends yields the same
        checkpoint chain, digests, and pending alarms."""
        from repro.replay.checkpointing import (
            CheckpointingOptions,
            CheckpointingReplayer,
        )
        from repro.rnr.recorder import Recorder, RecorderOptions
        from tests.conftest import small_workload

        spec = small_workload("mysql")
        run = Recorder(spec,
                       RecorderOptions(max_instructions=60_000)).run()
        results = {}
        for backend in ("interp", "trace"):
            replayer = CheckpointingReplayer(
                _spec_with_backend(spec, backend), run.log,
                CheckpointingOptions())
            outcome = replayer.run_to_end()
            results[backend] = (
                replayer.machine.state_digest(),
                replayer.machine.cpu.capture_state(),
                tuple((c.icount, c.cpu_state)
                      for c in outcome.store.all()),
                tuple(outcome.pending_alarms),
            )
        assert results["interp"] == results["trace"]

    def test_sentinel_digests_match(self):
        """With divergence sentinels enabled, the rolling CPU-digest chain
        embedded in the log is identical across backends — the trace
        backend must leave the architectural digest stream untouched."""
        from repro.rnr.recorder import Recorder, RecorderOptions
        from tests.conftest import small_workload

        spec = small_workload("radiosity")
        logs = {}
        for backend in ("interp", "trace"):
            recorder = Recorder(
                _spec_with_backend(spec, backend),
                RecorderOptions(max_instructions=60_000,
                                sentinel_records=50))
            logs[backend] = recorder.run().log.to_bytes()
        assert logs["interp"] == logs["trace"]

    def test_parallel_ar_verdicts_match(self):
        """Parallel alarm resolution reaches the same verdicts regardless
        of which backend the alarm replayers execute on."""
        from repro.attacks import deliver_rop_attack
        from repro.core.parallel import resolve_alarms_parallel
        from repro.replay.checkpointing import (
            CheckpointingOptions,
            CheckpointingReplayer,
        )
        from repro.rnr.recorder import Recorder, RecorderOptions
        from tests.conftest import small_workload

        spec, _ = deliver_rop_attack(small_workload("apache"),
                                     at_cycle=10_000)
        run = Recorder(spec,
                       RecorderOptions(max_instructions=60_000)).run()
        verdicts = {}
        for backend in ("interp", "trace"):
            ar_spec = _spec_with_backend(spec, backend)
            cr = CheckpointingReplayer(
                ar_spec, run.log, CheckpointingOptions()).run_to_end()
            assert cr.pending_alarms, "attack run must raise alarms"
            resolution = resolve_alarms_parallel(
                ar_spec, run.log, cr.pending_alarms, store=cr.store)
            verdicts[backend] = [
                (v.kind.value, v.alarm.icount, v.alarm.pc)
                for v in resolution.verdicts
            ]
        assert verdicts["interp"] == verdicts["trace"]


class TestBackendParityBisection:
    """The run differ's bisection as a backend-equivalence gate: record
    once, probe the same instruction counts under both backends, and the
    binary search must come back empty-handed."""

    def test_bisection_finds_no_divergence_across_backends(self):
        """Probes under ``interp`` and ``trace`` — seeded from one shared
        checkpoint store, with sentinels recorded — agree at every point
        of the whole run, so ``bisect_window`` returns None."""
        from repro.diffing import ReplayProbe, bisect_window
        from repro.replay.checkpointing import (
            CheckpointingOptions,
            CheckpointingReplayer,
        )
        from repro.rnr.recorder import Recorder, RecorderOptions
        from tests.conftest import small_workload

        spec = small_workload("fileio")
        run = Recorder(spec, RecorderOptions(max_instructions=120_000,
                                             sentinel_records=16)).run()
        store = CheckpointingReplayer(
            spec, run.log, CheckpointingOptions(period_s=0.01),
        ).run_to_end().store
        assert len(store), "need checkpoints to seed the probes from"
        end_icount = run.log.records()[-1].icount
        probes = {
            backend: ReplayProbe(_spec_with_backend(spec, backend),
                                 run.log, store=store)
            for backend in ("interp", "trace")
        }
        assert bisect_window(probes["interp"], probes["trace"],
                             (0, end_icount)) is None
        # The endpoint agreement check is one probe per side, each
        # seeded from the shared store's checkpoints.
        assert all(seed > 0 for probe in probes.values()
                   for seed in probe.seed_icounts)

    def test_diff_of_backend_recordings_reports_parity(self, tmp_path,
                                                       capsys):
        """``repro diff`` across one workload recorded under each backend
        prints REPLAY PARITY: TRUE — the CLI face of bit-identity."""
        from repro.cli import main as cli_main
        from repro.rnr.recorder import Recorder, RecorderOptions
        from repro.rnr.session import SessionManifest, save_session

        logs = {}
        for backend in ("interp", "trace"):
            manifest = SessionManifest(benchmark="fileio", seed=2018,
                                       attack=None,
                                       max_instructions=120_000,
                                       exec_backend=backend)
            run = Recorder(manifest.build_spec(),
                           RecorderOptions(max_instructions=120_000,
                                           sentinel_records=16)).run()
            path = tmp_path / f"{backend}.session"
            save_session(path, manifest, run.log)
            logs[backend] = path
        code = cli_main(["diff", str(logs["interp"]), str(logs["trace"])])
        out = capsys.readouterr().out
        assert code == 0
        assert out.strip().endswith("REPLAY PARITY: TRUE")
