"""Tests for the three Table 1 detectors."""

import pytest

from repro.cpu.exits import RopAlarmKind
from repro.detectors import (
    DosAnalyzer,
    DosWatchdog,
    JopDetector,
    RasRopDetector,
    measure_false_alarm_suppression,
    select_common_functions,
)
from repro.rnr.recorder import Recorder, RecorderOptions

from tests.conftest import small_workload


class TestFig8Suppression:
    @pytest.fixture(scope="class")
    def apache_breakdown(self):
        spec = small_workload("apache")
        return measure_false_alarm_suppression(spec,
                                               max_instructions=2_000_000)

    def test_unfiltered_basic_design_floods(self, apache_breakdown):
        """§4.2: the basic design 'suffers from many false alarms' — at
        least one per context switch, an order of magnitude above what the
        filtered design reports."""
        assert apache_breakdown.unfiltered >= 15
        assert (apache_breakdown.unfiltered
                >= 10 * max(1, apache_breakdown.passed_to_replayers))

    def test_whitelist_suppresses_most(self, apache_breakdown):
        assert (apache_breakdown.suppressed_by_whitelist
                > apache_breakdown.passed_to_replayers)

    def test_backras_suppresses_more(self, apache_breakdown):
        assert apache_breakdown.suppressed_by_backras > 0

    def test_residual_false_alarms_are_few(self, apache_breakdown):
        """The Figure 8 headline: the filters leave almost nothing."""
        assert (apache_breakdown.passed_to_replayers
                <= apache_breakdown.unfiltered * 0.2)

    def test_rows_are_per_million(self, apache_breakdown):
        rows = apache_breakdown.rows()
        assert set(rows) == {"Whitelist", "BackRAS", "FalseAlarm"}
        total = (apache_breakdown.per_million(apache_breakdown.unfiltered))
        assert sum(rows.values()) <= total + 1e-9

    def test_quiet_benchmark_passes_nothing(self):
        spec = small_workload("radiosity")
        breakdown = measure_false_alarm_suppression(
            spec, max_instructions=1_000_000,
        )
        assert breakdown.passed_to_replayers == 0


class TestRasRopDetector:
    def test_configure_enables_machinery(self):
        spec = small_workload("mysql")
        recorder = Recorder(spec, RecorderOptions(alarms=False))
        RasRopDetector().configure(recorder)
        assert recorder.options.alarms
        assert recorder.options.backras

    def test_owns_ras_alarms_only(self):
        detector = RasRopDetector()
        from repro.rnr.records import AlarmRecord

        ras_alarm = AlarmRecord(icount=1, kind=RopAlarmKind.MISMATCH, pc=0,
                                predicted=None, actual=0, tid=0)
        jop_alarm = AlarmRecord(icount=1, kind=RopAlarmKind.JOP, pc=0,
                                predicted=None, actual=0, tid=0)
        assert detector.owns_alarm(ras_alarm)
        assert not detector.owns_alarm(jop_alarm)


class TestJopDetector:
    def test_table_selection_prefers_hot_functions(self):
        spec = small_workload("make")
        table = select_common_functions(spec.kernel, capacity=8)
        assert len(table) == 8
        assert any(name.startswith("sys_") for name in table)

    def test_benign_run_with_table_raises_no_jop_alarms(self):
        spec = small_workload("make")
        recorder = Recorder(spec,
                            RecorderOptions(max_instructions=2_000_000))
        JopDetector().configure(recorder)
        run = recorder.run()
        assert run.jop_alarms == []

    def test_excluded_function_triggers_benign_alarm(self):
        """Leaving a legitimately-dispatched function out of the hardware
        table produces exactly the 'less common function' alarms the
        replayer is meant to absorb."""
        from repro.attacks import build_jop_attack_program
        from repro.detectors import verify_jop_target
        from repro.replay.verdict import VerdictKind

        # The attacker program dispatches through ops_table twice (plant +
        # invoke); excluding the dispatch helpers is not needed — instead
        # exclude op_noop, which boot dispatches benignly.
        spec = small_workload("make")
        recorder = Recorder(spec,
                            RecorderOptions(max_instructions=2_000_000))
        JopDetector(exclude=frozenset({"op_noop"})).configure(recorder)
        run = recorder.run()
        assert run.jop_alarms, "benign dispatch to op_noop must now alarm"
        verdict = verify_jop_target(spec.kernel, run.jop_alarms[0])
        assert verdict.kind is VerdictKind.FALSE_POSITIVE


class TestDosDetector:
    def test_attack_detected_and_profiled(self):
        from repro.attacks import build_dos_attack_program

        spec = build_dos_attack_program(small_workload("mysql"),
                                        spin_iterations=12_000)
        recorder = Recorder(spec,
                            RecorderOptions(max_instructions=3_000_000))
        DosWatchdog().configure(recorder)
        run = recorder.run()
        dos_alarms = [a for a in run.alarms if a.kind is RopAlarmKind.DOS]
        assert len(dos_alarms) == 1
        analysis = DosAnalyzer(sample_every=512).analyze(
            spec, run.log, dos_alarms[0],
        )
        assert analysis.is_kernel_hog
        assert analysis.dominant_function in ("kwork", "sys_spin")

    def test_benign_run_raises_no_dos_alarm(self):
        spec = small_workload("mysql")
        recorder = Recorder(spec,
                            RecorderOptions(max_instructions=3_000_000))
        DosWatchdog().configure(recorder)
        run = recorder.run()
        assert all(a.kind is not RopAlarmKind.DOS for a in run.alarms)

    def test_dos_alarm_is_in_the_log_and_replayable(self):
        from repro.attacks import build_dos_attack_program
        from repro.replay.base import DeterministicReplayer

        spec = build_dos_attack_program(small_workload("mysql"),
                                        spin_iterations=12_000)
        recorder = Recorder(spec,
                            RecorderOptions(max_instructions=3_000_000))
        DosWatchdog().configure(recorder)
        run = recorder.run()
        result = DeterministicReplayer(spec, run.log.cursor()).run()
        assert result.reached_end
        assert result.digest_checked
