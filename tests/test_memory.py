"""Tests for physical memory: permissions, W⊕X, dirty tracking, snapshots."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeviceError, MemoryError_
from repro.memory import (
    PERM_EXEC,
    PERM_READ,
    PERM_USER,
    PERM_WRITE,
    AccessViolation,
    MmioRegistry,
    PhysicalMemory,
    describe_perms,
)


def make_memory() -> PhysicalMemory:
    memory = PhysicalMemory(page_size=16)
    memory.map_range(0, 16, PERM_READ | PERM_WRITE | PERM_USER)
    memory.map_range(16, 16, PERM_READ | PERM_EXEC)
    return memory


class TestPermissions:
    def test_user_read_write(self):
        memory = make_memory()
        memory.store(3, 99, user=True)
        assert memory.load(3, user=True) == 99

    def test_user_cannot_touch_kernel_page(self):
        memory = make_memory()
        with pytest.raises(AccessViolation):
            memory.load(17, user=True)

    def test_kernel_can_touch_user_page(self):
        memory = make_memory()
        memory.store(3, 5, user=False)
        assert memory.load(3, user=False) == 5

    def test_fetch_requires_exec(self):
        memory = make_memory()
        with pytest.raises(AccessViolation):
            memory.fetch(0, user=False)
        assert memory.fetch(17, user=False) == 0

    def test_write_to_exec_page_faults(self):
        memory = make_memory()
        with pytest.raises(AccessViolation):
            memory.store(17, 1, user=False)

    def test_unmapped_access_faults(self):
        memory = make_memory()
        with pytest.raises(AccessViolation):
            memory.load(1000, user=False)

    def test_wx_rejected(self):
        memory = PhysicalMemory(page_size=16)
        with pytest.raises(MemoryError_):
            memory.map_range(0, 16, PERM_WRITE | PERM_EXEC)

    def test_wx_allowed_when_unenforced(self):
        memory = PhysicalMemory(page_size=16, enforce_wx=False)
        memory.map_range(0, 16, PERM_READ | PERM_WRITE | PERM_EXEC)
        memory.store(0, 42, user=False)
        assert memory.fetch(0, user=False) == 42

    def test_describe_perms(self):
        assert describe_perms(PERM_READ | PERM_EXEC) == "r-x-"
        assert describe_perms(0) == "----"


class TestHostAccess:
    def test_host_bypasses_permissions(self):
        memory = make_memory()
        memory.write_word(17, 123)
        assert memory.read_word(17) == 123

    def test_host_unmapped_raises_library_error(self):
        memory = make_memory()
        with pytest.raises(MemoryError_):
            memory.read_word(1 << 40)

    def test_block_round_trip(self):
        memory = make_memory()
        memory.write_block(0, [1, 2, 3])
        assert memory.read_block(0, 3) == [1, 2, 3]

    def test_words_are_masked_to_64_bits(self):
        memory = make_memory()
        memory.write_word(0, 2**64 + 5)
        assert memory.read_word(0) == 5


class TestDirtyTracking:
    def test_writes_mark_pages_dirty(self):
        memory = make_memory()
        memory.store(3, 1, user=False)
        memory.write_word(17, 1)
        assert memory.dirty_pages() == {0, 1}

    def test_clear_dirty(self):
        memory = make_memory()
        memory.store(3, 1, user=False)
        memory.clear_dirty()
        assert memory.dirty_pages() == frozenset()

    def test_reads_do_not_dirty(self):
        memory = make_memory()
        memory.clear_dirty()
        memory.load(0, user=False)
        assert memory.dirty_pages() == frozenset()


class TestSnapshots:
    def test_snapshot_restore_round_trip(self):
        memory = make_memory()
        memory.write_word(2, 77)
        snapshot = memory.snapshot_pages([0])
        memory.write_word(2, 0)
        memory.restore_pages(snapshot)
        assert memory.read_word(2) == 77

    def test_snapshot_is_a_copy(self):
        memory = make_memory()
        snapshot = memory.snapshot_pages([0])
        memory.write_word(0, 1)
        assert snapshot[0][0] == 0

    def test_snapshot_unmapped_page_rejected(self):
        memory = make_memory()
        with pytest.raises(MemoryError_):
            memory.snapshot_pages([99])

    def test_full_snapshot_covers_all_pages(self):
        memory = make_memory()
        assert set(memory.snapshot_full()) == {0, 1}

    def test_perms_snapshot_round_trip(self):
        memory = make_memory()
        perms = memory.perms_snapshot()
        fresh = PhysicalMemory(page_size=16)
        fresh.restore_perms(perms)
        assert fresh.page_perms(1) == PERM_READ | PERM_EXEC

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 2**64 - 1)),
            max_size=30,
        )
    )
    def test_restore_always_recovers_prior_contents(self, writes):
        memory = make_memory()
        for addr, value in writes:
            memory.write_word(addr, value)
        expected = memory.read_block(0, 16)
        snapshot = memory.snapshot_pages([0])
        for addr in range(16):
            memory.write_word(addr, 0)
        memory.restore_pages(snapshot)
        assert memory.read_block(0, 16) == expected


class _StubDevice:
    def __init__(self):
        self.writes = []

    def mmio_read(self, offset):
        return offset * 10

    def mmio_write(self, offset, value):
        self.writes.append((offset, value))


class TestMmio:
    def test_is_mmio(self):
        memory = make_memory()
        memory.add_mmio_range(0x1000, 8)
        assert memory.is_mmio(0x1000)
        assert memory.is_mmio(0x1007)
        assert not memory.is_mmio(0x1008)

    def test_overlapping_ranges_rejected(self):
        memory = make_memory()
        memory.add_mmio_range(0x1000, 8)
        with pytest.raises(MemoryError_):
            memory.add_mmio_range(0x1004, 8)

    def test_registry_dispatch(self):
        registry = MmioRegistry()
        device = _StubDevice()
        registry.register(0x1000, 8, device)
        assert registry.read(0x1002) == 20
        registry.write(0x1003, 9)
        assert device.writes == [(3, 9)]

    def test_registry_unmapped(self):
        registry = MmioRegistry()
        with pytest.raises(DeviceError):
            registry.read(0x5000)

    def test_registry_overlap_rejected(self):
        registry = MmioRegistry()
        registry.register(0x1000, 8, _StubDevice())
        with pytest.raises(DeviceError):
            registry.register(0x1007, 8, _StubDevice())
