"""The central invariant: replay reproduces the recording exactly."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReplayDivergenceError
from repro.replay.base import DeterministicReplayer
from repro.rnr.log import InputLog
from repro.rnr.records import EndRecord, InterruptRecord, RdtscRecord
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import profile_by_name
from repro.workloads.suite import build_workload

from tests.conftest import cached_attack_recording, cached_recording, small_workload


BENCHMARKS = ("apache", "fileio", "make", "mysql", "radiosity")


class TestDeterminism:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_replay_matches_digest(self, name):
        spec, run = cached_recording(name)
        result = DeterministicReplayer(spec, run.log.cursor()).run()
        assert result.reached_end
        assert result.digest_checked

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_replay_matches_instruction_count(self, name):
        spec, run = cached_recording(name)
        replayer = DeterministicReplayer(spec, run.log.cursor())
        replayer.run()
        assert replayer.machine.cpu.icount == run.metrics.instructions

    def test_attack_run_replays_exactly(self):
        spec, chain, run = cached_attack_recording()
        result = DeterministicReplayer(spec, run.log.cursor()).run()
        assert result.reached_end
        assert result.digest_checked

    def test_replay_reproduces_register_state(self):
        spec, run = cached_recording("mysql")
        replayer = DeterministicReplayer(spec, run.log.cursor(),
                                         verify_digest=False)
        replayer.run()
        assert replayer.machine.cpu.regs == run.machine.cpu.regs
        assert replayer.machine.cpu.pc == run.machine.cpu.pc

    def test_replay_reproduces_console_output(self):
        spec, run = cached_recording("mysql")
        replayer = DeterministicReplayer(spec, run.log.cursor(),
                                         verify_digest=False)
        replayer.run()
        assert replayer.machine.console.text == run.machine.console.text

    def test_replay_reproduces_disk_state(self):
        spec, run = cached_recording("fileio")
        replayer = DeterministicReplayer(spec, run.log.cursor(),
                                         verify_digest=False)
        replayer.run()
        for block in run.machine.disk.dirty_blocks():
            assert (replayer.machine.disk.read_block(block)
                    == run.machine.disk.read_block(block))

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(0, 2**16))
    def test_determinism_for_arbitrary_seeds(self, seed):
        """Any seeded workload records and replays to the same digest."""
        profile = dataclasses.replace(
            profile_by_name("mysql"), iterations=3, tasks=2,
            compute_per_iter=300,
        )
        spec = build_workload(profile, seed=seed)
        run = Recorder(spec, RecorderOptions(max_instructions=400_000)).run()
        result = DeterministicReplayer(spec, run.log.cursor()).run()
        assert result.reached_end
        assert result.digest_checked


class TestDivergenceDetection:
    def _tampered(self, run, mutate):
        log = InputLog()
        for record in run.log.records():
            log.append(mutate(record))
        return log

    def test_tampered_network_payload_detected(self):
        """Flipping one payload word changes guest memory, so replay ends
        with a digest mismatch at the latest (or diverges earlier if the
        change alters control flow)."""
        from repro.rnr.records import NetworkDmaRecord

        spec, run = cached_recording("apache")
        tampered_one = [False]

        def mutate(record):
            if isinstance(record, NetworkDmaRecord) and not tampered_one[0]:
                tampered_one[0] = True
                words = (record.words[0] ^ 0x5A5A,) + record.words[1:]
                return NetworkDmaRecord(icount=record.icount,
                                        addr=record.addr, words=words)
            return record

        tampered = self._tampered(run, mutate)
        assert tampered_one is not None
        with pytest.raises(ReplayDivergenceError):
            DeterministicReplayer(spec, tampered.cursor()).run()

    def test_shifted_interrupt_detected(self):
        spec, run = cached_recording("fileio")
        shifted_one = [False]

        def mutate(record):
            if isinstance(record, InterruptRecord) and not shifted_one[0]:
                shifted_one[0] = True
                return InterruptRecord(icount=record.icount + 40_000_000,
                                       vector=record.vector)
            return record

        tampered = self._tampered(run, mutate)
        with pytest.raises(ReplayDivergenceError):
            DeterministicReplayer(spec, tampered.cursor()).run()

    def test_wrong_digest_detected(self):
        spec, run = cached_recording("mysql")

        def mutate(record):
            if isinstance(record, EndRecord):
                return EndRecord(icount=record.icount,
                                 digest=record.digest ^ 1)
            return record

        tampered = self._tampered(run, mutate)
        with pytest.raises(ReplayDivergenceError):
            DeterministicReplayer(spec, tampered.cursor()).run()

    def test_wrong_spec_diverges(self):
        """Replaying a log on the wrong workload must fail loudly."""
        spec_a, run = cached_recording("mysql")
        spec_b = small_workload("mysql", seed=999)
        with pytest.raises(ReplayDivergenceError):
            replayer = DeterministicReplayer(spec_b, run.log.cursor())
            replayer.run()

    def test_truncated_log_reports_exhaustion(self):
        spec, run = cached_recording("mysql")
        log = InputLog()
        for record in run.log.records()[: len(run.log) // 2]:
            log.append(record)
        replayer = DeterministicReplayer(spec, log.cursor())
        try:
            result = replayer.run()
        except ReplayDivergenceError:
            return  # acceptable: truncation surfaced as divergence
        assert not result.reached_end
        assert result.stop_reason == "log_exhausted"
