"""Unit and property tests for instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError
from repro.isa import Instruction, Opcode, decode, encode, try_decode
from repro.isa.opcodes import SIGNATURES


def all_opcodes():
    return list(Opcode)


class TestEncodingRoundTrip:
    @pytest.mark.parametrize("op", all_opcodes())
    def test_zero_operand_round_trip(self, op):
        instr = Instruction(op=op)
        assert decode(encode(instr)) == instr

    def test_full_fields_round_trip(self):
        instr = Instruction(op=Opcode.ADDI, rd=3, rs1=7, imm=-1234)
        assert decode(encode(instr)) == instr

    def test_negative_imm_extremes(self):
        for imm in (-(2**31), 2**31 - 1, -1, 0, 1):
            instr = Instruction(op=Opcode.LI, rd=1, imm=imm)
            assert decode(encode(instr)).imm == imm

    @given(
        op=st.sampled_from(all_opcodes()),
        rd=st.integers(0, 15),
        rs1=st.integers(0, 15),
        rs2=st.integers(0, 15),
        imm=st.integers(-(2**31), 2**31 - 1),
    )
    def test_round_trip_property(self, op, rd, rs1, rs2, imm):
        instr = Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        assert decode(encode(instr)) == instr


class TestDecodeValidation:
    def test_invalid_opcode_byte_rejected(self):
        with pytest.raises(DecodeError):
            decode(0xFF << 56)

    def test_reserved_bits_rejected(self):
        word = encode(Instruction(op=Opcode.NOP)) | (1 << 35)
        with pytest.raises(DecodeError):
            decode(word)

    def test_try_decode_returns_none_for_data(self):
        assert try_decode(0xDEAD_BEEF_0000_0001) is None

    def test_try_decode_returns_instruction_for_code(self):
        word = encode(Instruction(op=Opcode.RET))
        assert try_decode(word) == Instruction(op=Opcode.RET)

    def test_zero_word_is_not_an_instruction(self):
        assert try_decode(0) is None

    @given(word=st.integers(0, 2**64 - 1))
    def test_try_decode_never_raises(self, word):
        result = try_decode(word)
        if result is not None:
            assert encode(result) == word

    def test_register_out_of_range_rejected(self):
        with pytest.raises(DecodeError):
            Instruction(op=Opcode.MOV, rd=16)

    def test_imm_out_of_range_rejected(self):
        with pytest.raises(DecodeError):
            Instruction(op=Opcode.LI, rd=0, imm=2**31)


class TestSignatures:
    def test_every_opcode_has_a_signature(self):
        for op in Opcode:
            assert op in SIGNATURES

    def test_signature_slots_are_known(self):
        for signature in SIGNATURES.values():
            assert set(signature) <= {"d", "a", "b", "i"}
