"""Tests for gadget scanning, chain building, and exploit delivery."""

import pytest
from hypothesis import given, strategies as st

from repro.attacks import (
    GadgetKind,
    GadgetScanner,
    attack_payload_words,
    build_dos_attack_program,
    build_jop_attack_program,
    build_set_root_chain,
    deliver_rop_attack,
)
from repro.errors import AttackBuildError
from repro.isa import Asm, Instruction, Opcode, encode
from repro.kernel.layout import DEFAULT_LAYOUT
from repro.workloads.suite import kernel_for_layout

from tests.conftest import small_workload


@pytest.fixture(scope="module")
def kernel():
    return kernel_for_layout(DEFAULT_LAYOUT)


class TestGadgetScanner:
    def test_finds_rets_in_kernel(self, kernel):
        scanner = GadgetScanner.over_image(kernel.image)
        rets = scanner.find_rets()
        assert len(rets) > 10

    def test_finds_the_three_canonical_gadgets(self, kernel):
        scanner = GadgetScanner.over_image(kernel.image)
        assert scanner.find(GadgetKind.POP_REG, reg=1) is not None
        assert scanner.find(GadgetKind.LOAD_INDIRECT, reg=2,
                            src_reg=1) is not None
        assert scanner.find(GadgetKind.CALL_REG, reg=2) is not None

    def test_pop_gadget_is_the_epilogue(self, kernel):
        scanner = GadgetScanner.over_image(kernel.image)
        gadget = scanner.find(GadgetKind.POP_REG, reg=1)
        assert gadget.addr == kernel.addr("__gadget_pop_r1")

    def test_gadgets_decode_as_claimed(self, kernel):
        scanner = GadgetScanner.over_image(kernel.image)
        for gadget in scanner.scan():
            assert gadget.instructions[-1].op is Opcode.RET
            assert "ret" in gadget.disassemble()

    def test_scan_of_data_finds_nothing(self):
        asm = Asm(base=0)
        for value in (0xDEAD_BEEF_DEAD_BEEF, 0, 2**64 - 1):
            asm.word(value)
        scanner = GadgetScanner.over_image(asm.assemble())
        assert scanner.scan() == []

    def test_scan_over_live_memory(self, kernel):
        from repro.hypervisor.machine import GuestMachine
        from repro.cpu.exits import ExitControls

        spec = small_workload("radiosity")
        machine = GuestMachine(spec, ExitControls(), with_world=False)
        scanner = GadgetScanner.over_memory(
            machine.memory, kernel.image.base, kernel.image.end,
        )
        assert scanner.find(GadgetKind.POP_REG, reg=1) is not None

    @given(regs=st.lists(st.integers(0, 15), min_size=1, max_size=3))
    def test_synthetic_pop_gadgets_found(self, regs):
        asm = Asm(base=0x100)
        for reg in regs:
            asm.pop(reg)
            asm.ret()
        scanner = GadgetScanner.over_image(asm.assemble())
        for reg in regs:
            assert scanner.find(GadgetKind.POP_REG, reg=reg) is not None


class TestChainBuilder:
    def test_chain_layout_matches_figure_10(self, kernel):
        chain = build_set_root_chain(kernel)
        g1, addr, g2, g3 = chain.stack_words
        assert g1 == kernel.addr("__gadget_pop_r1")
        layout = kernel.layout
        assert addr == layout.ops_table_addr + layout.ops_table_entries - 1
        assert g2 == kernel.addr("kload2")
        assert g3 == kernel.addr("kdispatch2")

    def test_chain_disassembles(self, kernel):
        chain = build_set_root_chain(kernel)
        listing = chain.disassemble()
        assert len(listing) == 3
        assert any("pop" in line for line in listing)
        assert any("calli" in line for line in listing)

    def test_gadgetless_image_rejected(self):
        asm = Asm(base=DEFAULT_LAYOUT.kernel_code_base)
        asm.nop()
        asm.ret()
        bare = asm.assemble()
        scanner = GadgetScanner.over_image(bare)
        with pytest.raises(AttackBuildError):
            build_set_root_chain(kernel_for_layout(DEFAULT_LAYOUT),
                                 scanner=scanner)


class TestPayload:
    def test_payload_shape(self, kernel):
        payload = attack_payload_words(kernel)
        buffer_words = kernel.layout.vulnerable_buffer_words
        chain = build_set_root_chain(kernel)
        assert len(payload) == buffer_words + 4 + 1
        assert payload[buffer_words:buffer_words + 4] == chain.stack_words
        assert payload[-1] == 0

    def test_no_early_terminator(self, kernel):
        """A zero inside the junk would stop the copy before the return
        slot and the exploit would fizzle."""
        payload = attack_payload_words(kernel)
        assert 0 not in payload[:-1]

    def test_injection_extends_schedule(self):
        spec = small_workload("apache")
        attacked, chain = deliver_rop_attack(spec)
        assert len(attacked.packet_schedule) == len(spec.packet_schedule) + 1
        assert attacked.label.endswith("+rop")
        cycles = [cycle for cycle, _ in attacked.packet_schedule]
        assert cycles == sorted(cycles)

    def test_attack_grants_root_when_not_stalled(self):
        from tests.conftest import cached_attack_recording

        spec, chain, run = cached_attack_recording()
        assert run.machine.memory.read_word(spec.kernel.layout.uid_addr) == 0

    def test_attack_always_raises_alarm(self):
        """DESIGN.md invariant 2: no false negatives, ever."""
        from tests.conftest import cached_attack_recording

        spec, chain, run = cached_attack_recording()
        hijack_alarms = [
            a for a in run.alarms if a.actual == chain.stack_words[0]
        ]
        assert hijack_alarms, "the hijacked return must raise an alarm"


class TestOtherAttackBuilders:
    def test_jop_attack_appends_task(self):
        spec = small_workload("make")
        attacked = build_jop_attack_program(spec)
        assert len(attacked.init_entries) == len(spec.init_entries) + 1
        assert attacked.label.endswith("+jop")

    def test_jop_target_is_mid_function(self):
        from repro.attacks.jop_attack import mid_function_target

        spec = small_workload("make")
        target = mid_function_target(spec)
        starts = {start for start, _ in spec.kernel.functions.values()}
        assert target not in starts
        assert spec.kernel.function_at(target) is not None

    def test_dos_attack_appends_task(self):
        spec = small_workload("mysql")
        attacked = build_dos_attack_program(spec)
        assert len(attacked.init_entries) == len(spec.init_entries) + 1
        assert attacked.label.endswith("+dos")

    def test_attack_programs_fit_code_window(self):
        spec = build_dos_attack_program(
            build_jop_attack_program(small_workload("make"))
        )
        layout = spec.kernel.layout
        for image in spec.user_images:
            assert image.end <= layout.user_data_base
