"""Tests for the small shared surfaces: config, errors, disassembler,
config report, and the public package API."""

import pytest

import repro
from repro.config import DEFAULT_CONFIG, CostModel, SimulationConfig
from repro.errors import (
    AssemblerError,
    AttackBuildError,
    CheckpointError,
    DeviceError,
    HypervisorError,
    KernelBuildError,
    LogError,
    MemoryError_,
    ReplayDivergenceError,
    ReproError,
    WorkloadError,
)
from repro.isa import (
    Asm,
    Instruction,
    Opcode,
    disassemble,
    disassemble_range,
    encode,
)
from repro.isa.disassembler import format_instruction
from repro.perf.config_report import render_table2, render_table3


class TestConfig:
    def test_seconds_cycles_round_trip(self):
        config = DEFAULT_CONFIG
        assert config.cycles(config.seconds(500_000)) == 500_000

    def test_with_costs_overrides_selected_fields(self):
        tweaked = DEFAULT_CONFIG.with_costs(vmexit_cycles=7)
        assert tweaked.costs.vmexit_cycles == 7
        assert (tweaked.costs.ras_save_cycles
                == DEFAULT_CONFIG.costs.ras_save_cycles)
        assert DEFAULT_CONFIG.costs.vmexit_cycles == 1000  # original intact

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.ras_entries = 1

    def test_paper_unit_costs(self):
        costs = CostModel()
        assert costs.vmexit_cycles == 1000
        assert costs.ras_save_cycles == 200
        assert costs.ras_restore_cycles == 200


class TestErrors:
    def test_all_errors_derive_from_repro_error(self):
        for cls in (AssemblerError, AttackBuildError, CheckpointError,
                    DeviceError, HypervisorError, KernelBuildError,
                    LogError, MemoryError_, ReplayDivergenceError,
                    WorkloadError):
            assert issubclass(cls, ReproError)

    def test_assembler_error_carries_line(self):
        error = AssemblerError("bad operand", line=7)
        assert "line 7" in str(error)
        assert error.line == 7

    def test_divergence_error_carries_icount(self):
        error = ReplayDivergenceError("mismatch", icount=42)
        assert "instruction 42" in str(error)

    def test_memory_error_does_not_shadow_builtin(self):
        assert MemoryError_ is not MemoryError


class TestDisassembler:
    def test_every_opcode_renders(self):
        for op in Opcode:
            text = format_instruction(Instruction(op=op))
            assert text
            assert text.split()[0].isidentifier() or "_" not in text

    def test_register_aliases_in_output(self):
        text = format_instruction(Instruction(op=Opcode.MOV, rd=14, rs1=13))
        assert text == "mov sp, fp"

    def test_data_words_render_as_word_directive(self):
        assert disassemble(0xDEAD_BEEF_0000_0001).startswith(".word")

    def test_disassemble_range(self):
        asm = Asm(base=0x10)
        asm.li(1, 5)
        asm.ret()
        image = asm.assemble()
        words = dict(image.items())
        lines = disassemble_range(lambda a: words.get(a, 0), 0x10, 2)
        assert len(lines) == 2
        assert "li r1, 5" in lines[0]
        assert "ret" in lines[1]

    def test_encoding_is_disassembly_stable(self):
        instr = Instruction(op=Opcode.ADDI, rd=2, rs1=3, imm=-7)
        assert disassemble(encode(instr)) == "addi r2, r3, -7"


class TestConfigReport:
    def test_table2_mentions_all_key_knobs(self):
        text = render_table2(DEFAULT_CONFIG)
        assert "48-entry RAS" in text
        assert "W^X" in text
        assert "1000 cycles" in text

    def test_table2_tracks_config_changes(self):
        import dataclasses

        custom = dataclasses.replace(DEFAULT_CONFIG, ras_entries=16)
        assert "16-entry RAS" in render_table2(custom)

    def test_table3_is_per_benchmark(self):
        text = render_table3()
        assert text.count("\n") >= 5


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_surface(self):
        """The README's quickstart names must exist and compose."""
        spec, chain = repro.deliver_rop_attack(
            repro.build_workload(repro.APACHE)
        )
        assert spec.label == "apache+rop"
        assert len(chain.stack_words) == 4
        framework = repro.RnRSafe(spec)
        assert framework.spec is spec

    def test_log_cursor_public_accessor(self):
        from repro.rnr import InputLog, RdtscRecord

        log = InputLog()
        log.append(RdtscRecord(value=1))
        cursor = log.cursor()
        assert cursor.log is log


class TestDocumentation:
    """The shipped documentation set stays present and non-trivial."""

    def test_top_level_documents_exist(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = root / name
            assert path.exists(), name
            assert len(path.read_text()) > 2000, name

    def test_reference_docs_exist(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1] / "docs"
        for name in ("GUEST_ABI.md", "LOG_FORMAT.md"):
            assert (root / name).exists(), name

    def test_examples_are_runnable_scripts(self):
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[1] / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 3
        for script in scripts:
            text = script.read_text()
            assert '__name__ == "__main__"' in text, script.name

    def test_benchmarks_cover_every_figure_and_table(self):
        import pathlib

        benches = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
        names = {path.stem for path in benches.glob("test_*.py")}
        for required in ("test_fig5_recording", "test_fig6_log_rates",
                         "test_fig7_replay", "test_fig8_false_alarms",
                         "test_fig9_alarm_replay",
                         "test_tab1_framework_uses",
                         "test_tab23_configuration", "test_sec6_attack",
                         "test_sec84_response_window"):
            assert required in names, required


class TestExitControlsCopy:
    def test_copy_is_independent(self):
        from repro.cpu import ExitControls

        original = ExitControls(trap_call_ret=True)
        original.breakpoints.add(5)
        duplicate = original.copy()
        duplicate.breakpoints.add(9)
        duplicate.trap_call_ret = False
        assert original.breakpoints == {5}
        assert original.trap_call_ret
        assert duplicate.breakpoints == {5, 9}
