"""End-to-end tests of the RnR-Safe framework (Figure 1)."""

import pytest

from repro import (
    RecorderOptions,
    RnRSafe,
    RnRSafeOptions,
    VerdictKind,
    deliver_rop_attack,
)
from repro.core.response import checkpoints_needed
from repro.replay import CheckpointingOptions

from tests.conftest import small_workload


@pytest.fixture(scope="module")
def attack_report():
    spec, chain = deliver_rop_attack(small_workload("apache"))
    options = RnRSafeOptions(
        recorder=RecorderOptions(max_instructions=2_500_000),
    )
    return spec, chain, RnRSafe(spec, options).run()


@pytest.fixture(scope="module")
def benign_report():
    spec = small_workload("apache")
    options = RnRSafeOptions(
        recorder=RecorderOptions(max_instructions=2_500_000),
    )
    return spec, RnRSafe(spec, options).run()


class TestAttackRun:
    def test_attack_confirmed(self, attack_report):
        spec, chain, report = attack_report
        assert report.attacks, "the framework must confirm the ROP"

    def test_hijack_alarm_among_confirmed(self, attack_report):
        spec, chain, report = attack_report
        hijack_targets = {o.verdict.observed_target for o in report.attacks}
        assert chain.stack_words[0] in hijack_targets

    def test_nothing_left_unresolved(self, attack_report):
        spec, chain, report = attack_report
        assert report.inconclusive == []

    def test_every_outcome_has_attempts(self, attack_report):
        spec, chain, report = attack_report
        for outcome in report.outcomes:
            assert outcome.attempts
            assert outcome.attempts[-1] == outcome.verdict

    def test_response_windows_populated(self, attack_report):
        spec, chain, report = attack_report
        for outcome in report.outcomes:
            assert outcome.response is not None
            assert outcome.response.window_cycles > 0
            assert outcome.response.checkpoints_retained >= 1

    def test_response_window_is_a_few_seconds(self, attack_report):
        """§8.4: 'the time window is on average a few seconds'."""
        spec, chain, report = attack_report
        for outcome in report.attacks:
            seconds = outcome.response.window_seconds(spec.config)
            assert 0.0 < seconds < 60.0

    def test_summary_renders(self, attack_report):
        spec, chain, report = attack_report
        text = report.summary()
        assert "attacks confirmed" in text
        assert spec.label in text


class TestBenignRun:
    def test_no_attacks_on_benign_workload(self, benign_report):
        spec, report = benign_report
        assert report.attacks == []

    def test_false_positives_resolved_not_dropped(self, benign_report):
        spec, report = benign_report
        for outcome in report.outcomes:
            assert outcome.verdict.kind is VerdictKind.FALSE_POSITIVE

    def test_underflows_never_reach_ars(self, benign_report):
        spec, report = benign_report
        assert all(o.alarm.kind.value != "underflow"
                   for o in report.outcomes)

    def test_alarm_replayers_handle_very_few_alarms(self, benign_report):
        """The abstract's claim: 'the alarm replayer has to handle only
        very few false positives'."""
        spec, report = benign_report
        per_million = (len(report.outcomes) * 1e6
                       / max(1, report.recording.metrics.instructions))
        assert per_million < 100


class TestFrameworkConfiguration:
    def test_stall_policy_blocks_payload(self):
        # Use a traffic mix with no benign alarms (no setjmp, packets too
        # small for RAS underflow) so the first alarm IS the attack.
        clean = small_workload("apache", setjmp_every=0,
                               packet_len_high=200)
        spec, chain = deliver_rop_attack(clean)
        options = RnRSafeOptions(
            recorder=RecorderOptions(max_instructions=2_500_000,
                                     stall_on_alarm=True),
        )
        report = RnRSafe(spec, options).run()
        assert report.recording.stop_reason == "alarm_stall"
        uid = report.recording.machine.memory.read_word(
            spec.kernel.layout.uid_addr,
        )
        assert uid == 1000  # payload never executed
        assert report.attacks  # and yet the attack is still confirmed

    def test_custom_checkpoint_period(self):
        spec = small_workload("mysql")
        options = RnRSafeOptions(
            recorder=RecorderOptions(max_instructions=2_000_000),
            checkpointing=CheckpointingOptions(period_s=0.25),
        )
        report = RnRSafe(spec, options).run()
        assert len(report.checkpointing.store) >= 2


class TestRetentionRule:
    def test_checkpoints_needed_matches_paper_rule(self):
        # Window of 3 s at 1 s checkpoints: 3 + 2 retained.
        assert checkpoints_needed(3.0, 1.0) == 5
        # Plus N for N seconds of pre-attack history.
        assert checkpoints_needed(3.0, 1.0, history_seconds=4.0) == 9
        # Fractional windows round up.
        assert checkpoints_needed(0.5, 1.0) == 3
