"""Every injected fault must end in recovery or a typed error.

The fault plans in ``repro.faults`` damage the streaming pipeline at
every layer — frames in flight, the CR worker, alarm-replayer workers,
whole fleet sessions — and this suite pins the contract for each:

* transport damage (corruption, loss, truncation) is *recoverable*: the
  pipeline heals from the recorder's authoritative tee log and the
  results are bit-identical to an undamaged run, with
  :attr:`PipelinedRun.recovery` recording how;
* dead workers are retried with backoff, and exhaustion surfaces as a
  typed :class:`WorkerFailureError` / :class:`WorkerTimeoutError` —
  never a bare pool exception, a ``struct.error``, or a hang;
* a fleet session that keeps dying becomes a structured per-session
  failure in input order; the sessions around it are untouched;
* arbitrary byte damage to stored session files raises
  :class:`LogError` (or a subclass), never a decoder internal.
"""

import pathlib

import pytest

from repro.core.fleet import FleetSession, run_fleet
from repro.core.parallel import (
    record_and_replay_pipelined,
    resolve_alarms_parallel,
)
from repro.errors import (
    LogCorruptionError,
    LogError,
    WorkerFailureError,
    WorkerTimeoutError,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.rnr.log import StreamingLogReader
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.session import SessionManifest, load_session, save_session
from repro.workloads import build_workload, profile_by_name

# A small workload with enough records to stream several frames: the
# transport-fault tests damage individual frames and compare against
# this clean baseline.
PIPE_BUDGET = 40_000
PIPE_OPTIONS = RecorderOptions(max_instructions=PIPE_BUDGET)
PIPE_CR = CheckpointingOptions(period_s=0.2)
FRAME_RECORDS = 8
QUEUE_DEPTH = 4

# A workload that leaves several *pending* alarms for the parallel alarm
# replayers — worker faults need actual workers to kill.
AR_BUDGET = 120_000
AR_OPTIONS = RecorderOptions(max_instructions=AR_BUDGET)
AR_CR = CheckpointingOptions(period_s=0.2)


def _pipe_spec():
    return build_workload(profile_by_name("apache"))


def _ar_spec():
    return build_workload(profile_by_name("mysql"))


def _verdict_key(verdict):
    return (verdict.kind, verdict.benign_cause, verdict.alarm.icount,
            verdict.alarm.kind, verdict.alarm.tid)


@pytest.fixture(scope="module")
def clean_pipeline():
    """The undamaged pipelined run every transport fault must reproduce."""
    run = record_and_replay_pipelined(
        _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
        frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
    )
    assert run.recovery is None
    return run


@pytest.fixture(scope="module")
def ar_baseline():
    """Sequential record + CR with pending alarms, plus clean verdicts."""
    spec = _ar_spec()
    recording = Recorder(spec, AR_OPTIONS).run()
    checkpointing = CheckpointingReplayer(spec, recording.log,
                                          AR_CR).run_to_end()
    assert len(checkpointing.pending_alarms) >= 2, \
        "the AR fault tests need real workers to kill"
    resolution = resolve_alarms_parallel(
        spec, recording.log, checkpointing.pending_alarms,
        store=checkpointing.store, backend="thread",
    )
    return spec, recording, checkpointing, resolution


def _assert_identical(run, clean):
    """The recovered run must be bit-identical to the clean one."""
    assert run.recording.log.to_bytes() == clean.recording.log.to_bytes()
    assert run.final_cpu_state == clean.final_cpu_state
    assert len(run.checkpointing.store) == len(clean.checkpointing.store)
    assert ([_verdict_key(v) for v in run.resolution.verdicts]
            == [_verdict_key(v) for v in clean.resolution.verdicts])


class TestTransportFaults:
    """Damaged frames: the pipeline heals from the tee log."""

    def test_corrupt_frame_recovers(self, clean_pipeline):
        plan = FaultPlan([FaultSpec(FaultKind.CORRUPT_FRAME, target=2)])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        assert "CRC mismatch" in run.recovery
        _assert_identical(run, clean_pipeline)

    def test_dropped_frame_recovers(self, clean_pipeline):
        plan = FaultPlan([FaultSpec(FaultKind.DROP_FRAME, target=2)])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        assert "sequence gap" in run.recovery
        _assert_identical(run, clean_pipeline)

    def test_dropped_final_frame_recovers(self, clean_pipeline):
        # The last frame carries the End record; dropping it leaves no
        # sequence gap to notice — the torn stream only shows as a replay
        # that ran out of log without reaching the End.  This must heal,
        # not hang in the queue-drain path.
        last = len(clean_pipeline.stats.frames) - 1
        plan = FaultPlan([FaultSpec(FaultKind.DROP_FRAME, target=last)])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        assert "End record" in run.recovery
        _assert_identical(run, clean_pipeline)

    def test_truncated_frame_recovers(self, clean_pipeline):
        plan = FaultPlan([FaultSpec(FaultKind.TRUNCATE_FRAME, target=1)])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        _assert_identical(run, clean_pipeline)

    def test_stalled_frame_is_benign(self, clean_pipeline):
        # A slow link delays the stream; it must not damage it.
        plan = FaultPlan([FaultSpec(FaultKind.STALL_FRAME, target=1,
                                    stall_s=0.05)])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is None
        _assert_identical(run, clean_pipeline)

    def test_corrupt_frame_recovers_process_backend(self, clean_pipeline):
        plan = FaultPlan([FaultSpec(FaultKind.CORRUPT_FRAME, target=2)])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="process",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        _assert_identical(run, clean_pipeline)

    def test_resume_uses_checkpoint_when_available(self, clean_pipeline):
        # Damage a late frame: by then the CR holds completed checkpoints,
        # so the healer must resume from one instead of replaying from
        # scratch, and say so.
        late = len(clean_pipeline.stats.frames) - 2
        plan = FaultPlan([FaultSpec(FaultKind.CORRUPT_FRAME, target=late)])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        assert run.recovery.startswith("cr-resumed@")
        _assert_identical(run, clean_pipeline)


class TestCrWorkerFaults:
    """A dead Checkpointing Replayer worker: restart or resume."""

    def test_cr_crash_thread_backend_recovers(self, clean_pipeline):
        plan = FaultPlan([FaultSpec(FaultKind.CRASH_WORKER, role="cr")])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="thread",
            frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        assert run.recovery.startswith("cr-restarted")
        _assert_identical(run, clean_pipeline)

    def test_cr_hard_kill_process_backend_recovers(self, clean_pipeline):
        # The CR process os._exit()s without a word.  All frames must fit
        # the queue (nobody will ever drain it), so use one giant frame
        # size; results still must match the clean *small-frame* run
        # because framing never changes the replayed content.
        plan = FaultPlan([FaultSpec(FaultKind.KILL_WORKER, role="cr")])
        run = record_and_replay_pipelined(
            _pipe_spec(), PIPE_OPTIONS, PIPE_CR, backend="process",
            frame_records=2048, queue_depth=QUEUE_DEPTH,
            fault_plan=plan,
        )
        assert run.recovery is not None
        assert "died" in run.recovery
        assert (run.recording.log.to_bytes()
                == clean_pipeline.recording.log.to_bytes())
        assert run.final_cpu_state == clean_pipeline.final_cpu_state


class TestAlarmReplayerFaults:
    """Dead or stuck AR workers: retry, then a typed error."""

    def test_transient_crash_is_retried(self, ar_baseline):
        spec, recording, checkpointing, clean = ar_baseline
        plan = FaultPlan([FaultSpec(FaultKind.CRASH_WORKER, role="ar",
                                    target=1, attempt=0)])
        resolution = resolve_alarms_parallel(
            spec, recording.log, checkpointing.pending_alarms,
            store=checkpointing.store, backend="thread", fault_plan=plan,
        )
        assert ([_verdict_key(v) for v in resolution.verdicts]
                == [_verdict_key(v) for v in clean.verdicts])

    def test_persistent_crash_raises_typed_error(self, ar_baseline):
        spec, recording, checkpointing, _ = ar_baseline
        retries = spec.config.ar_max_retries
        plan = FaultPlan([
            FaultSpec(FaultKind.CRASH_WORKER, role="ar", target=1,
                      attempt=attempt)
            for attempt in range(retries + 1)
        ])
        with pytest.raises(WorkerFailureError,
                           match=f"after {retries + 1} attempts"):
            resolve_alarms_parallel(
                spec, recording.log, checkpointing.pending_alarms,
                store=checkpointing.store, backend="thread",
                fault_plan=plan,
            )

    def test_stalled_worker_times_out(self, ar_baseline):
        spec, recording, checkpointing, _ = ar_baseline
        plan = FaultPlan([FaultSpec(FaultKind.STALL_WORKER, role="ar",
                                    target=0, stall_s=5.0)])
        with pytest.raises(WorkerTimeoutError):
            resolve_alarms_parallel(
                spec, recording.log, checkpointing.pending_alarms,
                store=checkpointing.store, backend="thread",
                fault_plan=plan, timeout_s=0.4, max_retries=0,
            )

    def test_hard_killed_process_pool_degrades_to_threads(self, ar_baseline):
        # os._exit() in a process-pool worker breaks the whole pool; the
        # batch must degrade to the thread backend and still produce the
        # clean verdicts rather than surfacing BrokenProcessPool.
        spec, recording, checkpointing, clean = ar_baseline
        plan = FaultPlan([FaultSpec(FaultKind.KILL_WORKER, role="ar",
                                    target=1, attempt=0)])
        resolution = resolve_alarms_parallel(
            spec, recording.log, checkpointing.pending_alarms,
            store=checkpointing.store, backend="process", fault_plan=plan,
        )
        assert resolution.backend == "thread"
        assert ([_verdict_key(v) for v in resolution.verdicts]
                == [_verdict_key(v) for v in clean.verdicts])


class TestFleetFaults:
    """Session-level failures: contained, retried, reported in order."""

    SESSIONS = [
        FleetSession(benchmark="apache", seed=2018,
                     max_instructions=PIPE_BUDGET),
        FleetSession(benchmark="mysql", seed=2019,
                     max_instructions=PIPE_BUDGET),
        FleetSession(benchmark="apache", seed=2020,
                     max_instructions=PIPE_BUDGET),
    ]

    @pytest.fixture(scope="class")
    def clean_fleet(self):
        return run_fleet(self.SESSIONS, backend="thread")

    def test_crash_once_heals_with_retry(self, clean_fleet):
        plan = FaultPlan([FaultSpec(FaultKind.CRASH_WORKER, role="fleet",
                                    target=1, attempt=0)])
        fleet = run_fleet(self.SESSIONS, backend="thread", fault_plan=plan)
        assert [result.ok for result in fleet.results] == [True, True, True]
        assert fleet.results[1].attempts == 2
        assert fleet.results[1].backend.endswith("+retry")
        assert ([result.session_digest for result in fleet.results]
                == [result.session_digest for result in clean_fleet.results])

    def test_persistent_crash_becomes_structured_failure(self, clean_fleet):
        retries = 1
        plan = FaultPlan([
            FaultSpec(FaultKind.CRASH_WORKER, role="fleet", target=1,
                      attempt=attempt)
            for attempt in range(retries + 1)
        ])
        fleet = run_fleet(self.SESSIONS, backend="thread", fault_plan=plan,
                          max_retries=retries)
        assert [result.ok for result in fleet.results] == [True, False, True]
        failed = fleet.results[1]
        assert failed.error
        assert failed.stop_reason == "failed"
        assert fleet.failures == (failed,)
        # The neighbours are byte-identical to the clean fleet — a dying
        # session must not perturb the ones around it.
        for position in (0, 2):
            assert (fleet.results[position].session_digest
                    == clean_fleet.results[position].session_digest)
        # Results stay in input order even with a failure in the middle.
        assert [result.index for result in fleet.results] == [0, 1, 2]

    def test_hard_kill_breaks_pool_and_reruns_inline(self, clean_fleet):
        plan = FaultPlan([FaultSpec(FaultKind.KILL_WORKER, role="fleet",
                                    target=0, attempt=0)])
        fleet = run_fleet(self.SESSIONS, backend="process", fault_plan=plan)
        assert [result.ok for result in fleet.results] == [True, True, True]
        assert ([result.session_digest for result in fleet.results]
                == [result.session_digest for result in clean_fleet.results])

    def test_timeout_becomes_structured_failure_without_retry(self):
        plan = FaultPlan([FaultSpec(FaultKind.STALL_WORKER, role="fleet",
                                    target=1, stall_s=30.0)])
        fleet = run_fleet(self.SESSIONS, backend="thread", fault_plan=plan,
                          session_timeout_s=2.0)
        assert [result.ok for result in fleet.results] == [True, False, True]
        failed = fleet.results[1]
        assert "deadline" in failed.error
        # Retrying a timed-out session inline would stall the whole fleet
        # behind it; the policy is report-and-move-on.
        assert failed.attempts == 1


@pytest.fixture(scope="module")
def session_bytes(tmp_path_factory):
    """One small framed session file, as bytes, for mutation tests."""
    spec = _pipe_spec()
    recording = Recorder(spec, RecorderOptions(max_instructions=20_000)).run()
    manifest = SessionManifest(benchmark="apache", seed=2018,
                               max_instructions=20_000)
    path = tmp_path_factory.mktemp("sessions") / "clean.rnr"
    save_session(path, manifest, recording.log, framed=True,
                 frame_records=FRAME_RECORDS)
    return path.read_bytes()


def _expect_log_error_or_success(data: bytes, tmp_path: pathlib.Path):
    """Loading damaged bytes must raise LogError or succeed — nothing else.

    Some mutations are invisible (a flipped bit inside a JSON string
    value still parses, and the manifest does not checksum itself), so
    success is allowed; what is *never* allowed is a decoder internal —
    struct.error, UnicodeDecodeError, KeyError, IndexError — escaping.
    """
    target = tmp_path / "mutated.rnr"
    target.write_bytes(data)
    try:
        load_session(target)
    except LogError:
        pass


class TestDamagedSessionFiles:
    """Byte-level damage to stored sessions surfaces as LogError."""

    def test_truncation_at_every_boundary(self, session_bytes, tmp_path):
        # Cut the file at a spread of offsets including the 4-byte length
        # prefix, mid-header, and mid-frame.
        for cut in [0, 1, 3, 4, 10, len(session_bytes) // 2,
                    len(session_bytes) - 1]:
            _expect_log_error_or_success(session_bytes[:cut], tmp_path)

    def test_empty_and_garbage_files(self, tmp_path):
        for data in [b"", b"\x00", b"not a session", b"\xff" * 64]:
            _expect_log_error_or_success(data, tmp_path)

    def test_reader_rejects_trailing_garbage(self, session_bytes):
        reader = StreamingLogReader()
        header_length = int.from_bytes(session_bytes[:4], "big")
        body = session_bytes[4 + header_length:]
        with pytest.raises(LogError):
            reader.feed_stream(body + b"\x01\x02\x03")

    def test_reader_flags_out_of_order_frames(self, session_bytes):
        from repro.rnr.serialize import parse_frame_header

        header_length = int.from_bytes(session_bytes[:4], "big")
        body = session_bytes[4 + header_length:]
        _, first_end = parse_frame_header(body, 0)
        first_header, _ = parse_frame_header(body, 0)
        first_frame_end = first_end + first_header.payload_length
        reader = StreamingLogReader()
        with pytest.raises(LogCorruptionError, match="sequence gap"):
            # Skip frame 0 entirely: frame 1 arrives first.
            reader.feed_stream(body, first_frame_end)


try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the CI image bakes hypothesis in
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestSessionFuzz:
        """Property: no mutation of a session file escapes LogError."""

        @given(data=st.data())
        @settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        def test_single_byte_mutations(self, data, session_bytes, tmp_path):
            position = data.draw(
                st.integers(0, len(session_bytes) - 1), label="position")
            flip = data.draw(st.integers(1, 255), label="xor")
            mutated = bytearray(session_bytes)
            mutated[position] ^= flip
            _expect_log_error_or_success(bytes(mutated), tmp_path)

        @given(data=st.data())
        @settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        def test_random_truncations(self, data, session_bytes, tmp_path):
            cut = data.draw(
                st.integers(0, len(session_bytes) - 1), label="cut")
            _expect_log_error_or_success(session_bytes[:cut], tmp_path)

        @given(blob=st.binary(min_size=0, max_size=512))
        @settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        def test_arbitrary_blobs(self, blob, tmp_path):
            _expect_log_error_or_success(blob, tmp_path)

        @given(data=st.data())
        @settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        def test_streaming_reader_on_mutated_frames(self, data,
                                                    session_bytes):
            header_length = int.from_bytes(session_bytes[:4], "big")
            body = bytearray(session_bytes[4 + header_length:])
            position = data.draw(
                st.integers(0, len(body) - 1), label="position")
            body[position] ^= data.draw(st.integers(1, 255), label="xor")
            reader = StreamingLogReader()
            try:
                reader.feed_stream(bytes(body))
            except LogError:
                pass
