"""Tests for the Return Address Stack hardware model."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import ReturnAddressStack
from repro.errors import ReproError


class TestBasicOperation:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(5)
        assert ras.peek() == 5
        assert len(ras) == 1

    def test_peek_empty(self):
        assert ReturnAddressStack(2).peek() is None

    def test_invalid_capacity(self):
        with pytest.raises(ReproError):
            ReturnAddressStack(0)


class TestEviction:
    def test_push_to_full_evicts_oldest(self):
        ras = ReturnAddressStack(2)
        assert ras.push(1) is None
        assert ras.push(2) is None
        assert ras.push(3) == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_full_flag(self):
        ras = ReturnAddressStack(1)
        assert not ras.full
        ras.push(1)
        assert ras.full


class TestSaveRestore:
    def test_save_restore_round_trip(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        snapshot = ras.save()
        ras.clear()
        ras.restore(snapshot)
        assert ras.pop() == 2
        assert ras.pop() == 1

    def test_restore_oversized_snapshot_rejected(self):
        ras = ReturnAddressStack(2)
        with pytest.raises(ReproError):
            ras.restore((1, 2, 3))

    def test_save_is_immutable_copy(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        snapshot = ras.save()
        ras.push(2)
        assert snapshot == (1,)


class TestReferenceModel:
    """The RAS must behave exactly like an unbounded stack truncated to
    its newest ``capacity`` entries (DESIGN.md invariant 5)."""

    @given(
        capacity=st.integers(1, 8),
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(0, 1000)),
                st.tuples(st.just("pop"), st.just(0)),
            ),
            max_size=60,
        ),
    )
    def test_matches_truncated_unbounded_stack(self, capacity, ops):
        ras = ReturnAddressStack(capacity)
        reference: list[int] = []
        for kind, value in ops:
            if kind == "push":
                ras.push(value)
                reference.append(value)
                del reference[:-capacity]
            else:
                expected = reference.pop() if reference else None
                assert ras.pop() == expected
        assert ras.save() == tuple(reference)
