"""Durable run store: crash recovery, resume equivalence, supervision.

The contract under test is the robustness tentpole: a run interrupted at
*any* point — mid-journal, mid-checkpoint, or via a hard-killed fleet
worker — either resumes **bit-identically** to an uninterrupted run
(same log bytes, same checkpoint chain, same verdicts, same final CPU
state) or fails with a typed error.  Never a crash, never a silently
different replay.
"""

from __future__ import annotations

import json
import pickle
import shutil
import zlib

import pytest

from repro import cli
from repro.config import DEFAULT_CONFIG
from repro.core.fleet import FleetSession, run_fleet
from repro.core.parallel import record_and_replay_pipelined
from repro.errors import LogError, StoreCorruptError
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
)
from repro.replay.checkpointing import CheckpointingOptions
from repro.rnr.recorder import RecorderOptions
from repro.rnr.session import SessionManifest
from repro.store import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    RUN_STORE_VERSION,
    RunStoreWriter,
    encode_manifest,
    fsck_run,
    recover_run,
)

BUDGET = 120_000
FRAME_RECORDS = 4
PERIOD = 0.2


def _manifest() -> SessionManifest:
    return SessionManifest(benchmark="mysql", seed=2018, attack="rop",
                           max_instructions=BUDGET)


def _durable_run(path, *, resume=None, attempt=0, fault_plan=None):
    """One pipelined run journaling into a run store at ``path``."""
    manifest = _manifest()
    store = RunStoreWriter(
        str(path), manifest, fsync="never", frame_records=FRAME_RECORDS,
        fault_plan=fault_plan, attempt=attempt, resume=resume,
    )
    return record_and_replay_pipelined(
        manifest.build_spec(),
        RecorderOptions(max_instructions=BUDGET),
        CheckpointingOptions(period_s=PERIOD),
        backend="thread", frame_records=FRAME_RECORDS,
        run_store=store, resume=resume,
    )


def _verdict_keys(run):
    return [(verdict.kind.value, verdict.alarm.icount)
            for verdict in run.resolution.verdicts]


def _chain_shape(path):
    """The checkpoint chain as the manifest records it (id, position)."""
    body = json.loads((path / MANIFEST_NAME).read_text())["body"]
    return [(entry["id"], entry["icount"], entry["parent"],
             entry["log_position"]) for entry in body["checkpoints"]]


def _assert_bit_identical(resumed, path, reference, ref_path):
    """The resumed run and its healed store match the clean reference."""
    ref_run = reference
    assert resumed.recording.log.to_bytes() == \
        ref_run.recording.log.to_bytes()
    assert resumed.final_cpu_state == ref_run.final_cpu_state
    assert _verdict_keys(resumed) == _verdict_keys(ref_run)
    assert (path / JOURNAL_NAME).read_bytes() == \
        (ref_path / JOURNAL_NAME).read_bytes()
    assert _chain_shape(path) == _chain_shape(ref_path)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """An uninterrupted durable run — the equivalence oracle."""
    path = tmp_path_factory.mktemp("ref") / "store"
    run = _durable_run(path)
    assert run.recovery is None
    return run, path


class TestManifest:
    """The CRC'd manifest envelope: every byte accounted for."""

    def test_round_trip(self, reference):
        _, path = reference
        raw = (path / MANIFEST_NAME).read_bytes()
        from repro.store import decode_manifest

        body = decode_manifest(raw, "test")
        assert body["magic"] == "rnr-safe-run-store"
        assert body["version"] == RUN_STORE_VERSION
        assert body["state"] == "complete"
        assert encode_manifest(body) == raw

    def test_flipped_byte_fails_crc(self, reference, tmp_path):
        _, ref_path = reference
        raw = bytearray((ref_path / MANIFEST_NAME).read_bytes())
        # Flip inside a JSON string value so the text still parses.
        offset = raw.index(b"mysql")
        raw[offset] ^= 0x01
        store = tmp_path / "store"
        shutil.copytree(ref_path, store)
        (store / MANIFEST_NAME).write_bytes(bytes(raw))
        with pytest.raises(StoreCorruptError, match="CRC"):
            recover_run(store)

    def test_unparsable_manifest(self, reference, tmp_path):
        _, ref_path = reference
        store = tmp_path / "store"
        shutil.copytree(ref_path, store)
        (store / MANIFEST_NAME).write_bytes(b"not json {")
        with pytest.raises(StoreCorruptError):
            recover_run(store)

    def test_missing_store(self, tmp_path):
        with pytest.raises(StoreCorruptError, match="no run-store manifest"):
            recover_run(tmp_path / "nothing-here")

    def test_newer_store_version_is_a_clear_error(self, reference, tmp_path):
        _, ref_path = reference
        store = tmp_path / "store"
        shutil.copytree(ref_path, store)
        body = json.loads((store / MANIFEST_NAME).read_text())["body"]
        body["version"] = RUN_STORE_VERSION + 1
        (store / MANIFEST_NAME).write_bytes(encode_manifest(body))
        with pytest.raises(LogError, match="newer than this code supports"):
            recover_run(store)

    def test_newer_session_version_is_a_clear_error(self):
        data = _manifest().to_json()
        data["version"] = 99
        with pytest.raises(LogError, match="newer than this code supports"):
            SessionManifest.from_json(data)


class TestRecovery:
    """recover_run on healthy and damaged stores."""

    def test_complete_store_recovers_fully(self, reference):
        run, path = reference
        point = recover_run(path)
        assert point.recording_complete
        assert point.records == len(run.recording.log)
        assert point.log.to_bytes() == run.recording.log.to_bytes()
        assert len(point.chain_entries) == len(run.checkpointing.store)
        assert point.anchor_icount is not None
        assert point.notes == ()
        assert point.frame_records == FRAME_RECORDS
        report = fsck_run(path)
        assert "reuse the sealed journal" in report

    def test_garbage_tail_is_truncated(self, reference, tmp_path):
        run, ref_path = reference
        store = tmp_path / "store"
        shutil.copytree(ref_path, store)
        journal = store / JOURNAL_NAME
        clean = journal.read_bytes()
        journal.write_bytes(clean + b"\xf6garbage-after-a-crash")
        point = recover_run(store)
        assert point.journal_bytes_valid == len(clean)
        assert point.journal_bytes_total > len(clean)
        assert point.recording_complete
        assert any("torn tail" in note or "dropped" in note
                   for note in point.notes)
        # Resuming truncates the garbage and completes without re-record.
        resumed = _durable_run(store, resume=point,
                               attempt=point.attempt + 1)
        _assert_bit_identical(resumed, store, run, ref_path)

    def test_corrupt_checkpoint_drops_chain_suffix(self, reference,
                                                   tmp_path):
        run, ref_path = reference
        store = tmp_path / "store"
        shutil.copytree(ref_path, store)
        files = sorted((store / "checkpoints").glob("ckpt-*.bin"))
        assert len(files) >= 3
        victim = files[len(files) // 2]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        point = recover_run(store)
        assert len(point.chain_entries) == len(files) // 2
        assert any("dropped it and everything newer" in note
                   for note in point.notes)
        resumed = _durable_run(store, resume=point,
                               attempt=point.attempt + 1)
        _assert_bit_identical(resumed, store, run, ref_path)


class TestKillResume:
    """The acceptance matrix: kill the journal writer at frame k, resume,
    demand bit-identity with the uninterrupted reference."""

    # The reference run journals 9 frames (34 records, 4 per frame);
    # kill at the first, the last, and two interior frames.
    @pytest.mark.parametrize("kill_at", [0, 2, 5, 8])
    def test_kill_during_journaling(self, reference, tmp_path, kill_at):
        run, ref_path = reference
        store = tmp_path / "store"
        plan = FaultPlan([FaultSpec(FaultKind.CRASH_WORKER, role="journal",
                                    target=kill_at)])
        with pytest.raises(InjectedWorkerCrash):
            _durable_run(store, fault_plan=plan)
        point = recover_run(store)
        # The fault fires after the frame hits disk, so killing at the
        # final frame leaves a complete journal; any earlier frame
        # leaves a prefix that forces a deterministic re-record.
        assert point.recording_complete == (kill_at == 8)
        resumed = _durable_run(store, resume=point,
                               attempt=point.attempt + 1)
        assert resumed.recovery is not None
        _assert_bit_identical(resumed, store, run, ref_path)
        # The healed store is itself recoverable and complete.
        assert recover_run(store).recording_complete


class TestDurabilityOff:
    """durability=False must change nothing: no I/O, same bytes."""

    def test_durability_defaults_off(self):
        assert DEFAULT_CONFIG.durability is False

    def test_plain_pipeline_matches_durable_bytes(self, reference):
        run, _ = reference
        plain = record_and_replay_pipelined(
            _manifest().build_spec(),
            RecorderOptions(max_instructions=BUDGET),
            CheckpointingOptions(period_s=PERIOD),
            backend="thread", frame_records=FRAME_RECORDS,
        )
        assert plain.recording.log.to_bytes() == \
            run.recording.log.to_bytes()
        assert plain.final_cpu_state == run.final_cpu_state
        assert _verdict_keys(plain) == _verdict_keys(run)


class TestCheckpointStorePickle:
    """Satellite: the store's pickle round-trip keeps its bookkeeping."""

    def test_round_trip(self, reference):
        run, _ = reference
        store = run.checkpointing.store
        restored = pickle.loads(pickle.dumps(store))
        assert len(restored) == len(store)
        assert [c.icount for c in restored._checkpoints] == \
            [c.icount for c in store._checkpoints]
        assert restored._next_id == store._next_id
        assert restored.max_resident_bytes == store.max_resident_bytes
        assert restored.recycled == store.recycled
        assert restored.budget_merges == store.budget_merges
        # Memo caches stay home; they rebuild lazily on the other side.
        assert restored._pages_cache == {}
        assert restored._blocks_cache == {}
        anchor = restored.latest_before(10 ** 12)
        assert anchor is not None
        assert anchor.icount == store.latest_before(10 ** 12).icount


class TestSupervisor:
    """The self-healing fleet: dead and wedged workers come back."""

    SESSION = FleetSession(benchmark="mysql", seed=2018, attack="rop",
                           max_instructions=BUDGET, period_s=PERIOD)

    def test_dead_worker_is_resumed(self, reference, tmp_path):
        run, _ = reference
        plan = FaultPlan([FaultSpec(FaultKind.KILL_WORKER, role="journal",
                                    target=5)])
        fleet = run_fleet([self.SESSION], store_dir=str(tmp_path),
                          frame_records=FRAME_RECORDS, fault_plan=plan,
                          heal_poll_s=0.1)
        result = fleet.results[0]
        assert result.ok, result.error
        assert result.attempts >= 2
        kinds = [event.kind for event in result.recoveries]
        assert "session-resumed" in kinds or "session-restarted" in kinds
        assert fleet.recoveries
        # Healed digest equals the uninterrupted run's log digest.
        import hashlib

        assert result.session_digest == hashlib.sha256(
            run.recording.log.to_bytes()).hexdigest()

    def test_wedged_worker_is_healed_within_deadline(self, tmp_path):
        import time

        plan = FaultPlan([FaultSpec(FaultKind.STALL_WORKER, role="journal",
                                    target=5, stall_s=30.0)])
        started = time.monotonic()
        fleet = run_fleet([self.SESSION], store_dir=str(tmp_path),
                          frame_records=FRAME_RECORDS, fault_plan=plan,
                          heal_deadline_s=1.2, heal_poll_s=0.1)
        elapsed = time.monotonic() - started
        result = fleet.results[0]
        assert result.ok, result.error
        assert result.attempts >= 2
        assert any("stale" in event.cause for event in result.recoveries)
        assert elapsed < 25, "the heal must beat the 30s stall"

    def test_resume_attempts_are_bounded(self, tmp_path):
        plan = FaultPlan([
            FaultSpec(FaultKind.KILL_WORKER, role="journal", target=5,
                      attempt=attempt)
            for attempt in range(3)
        ])
        fleet = run_fleet([self.SESSION], store_dir=str(tmp_path),
                          frame_records=FRAME_RECORDS, fault_plan=plan,
                          heal_poll_s=0.1, max_resume_attempts=2)
        result = fleet.results[0]
        assert not result.ok
        assert "exhausted" in result.error
        assert len(result.recoveries) == 2


class TestCli:
    """record --store / fsck / resume work as one flow."""

    def test_record_fsck_resume(self, tmp_path, capsys):
        store = tmp_path / "cli-store"
        assert cli.main(["record", "mysql", "--attack", "rop",
                         "--budget", str(BUDGET),
                         "--store", str(store), "--fsync", "never"]) == 0
        assert cli.main(["fsck", str(store)]) == 0
        out = capsys.readouterr().out
        assert "reuse the sealed journal" in out
        assert cli.main(["resume", str(store),
                         "--checkpoint-period", str(PERIOD)]) == 0
        out = capsys.readouterr().out
        assert "resumed mysql+rop" in out

    def test_fsck_rejects_a_missing_store(self, tmp_path, capsys):
        # Unreadable/corrupt stores exit 2 (1 is reserved for
        # recoverable damage) — the `repro diff` exit-code contract.
        assert cli.main(["fsck", str(tmp_path / "nope")]) == 2
        assert "fsck:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# property: kill-while-writing never crashes and never lies
# ----------------------------------------------------------------------

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the CI image ships hypothesis
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestKillWhileWritingProperty:
    """Mutate any store file at any offset; recovery must either produce
    a bit-identical resume or a typed LogError — nothing else."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(target=st.sampled_from([MANIFEST_NAME, JOURNAL_NAME,
                                   "ckpt-first", "ckpt-last"]),
           frac=st.floats(min_value=0.0, max_value=1.0),
           mode=st.sampled_from(["flip", "truncate"]))
    def test_mutation_recovers_or_fails_typed(self, reference,
                                              tmp_path_factory,
                                              target, frac, mode):
        run, ref_path = reference
        store = tmp_path_factory.mktemp("mutate") / "store"
        shutil.copytree(ref_path, store)
        if target == "ckpt-first":
            victim = sorted((store / "checkpoints").glob("ckpt-*.bin"))[0]
        elif target == "ckpt-last":
            victim = sorted((store / "checkpoints").glob("ckpt-*.bin"))[-1]
        else:
            victim = store / target
        data = bytearray(victim.read_bytes())
        offset = min(int(frac * len(data)), len(data) - 1)
        if mode == "flip":
            data[offset] ^= 0x40
            victim.write_bytes(bytes(data))
        else:
            victim.write_bytes(bytes(data[:offset]))
        try:
            point = recover_run(store)
        except LogError:
            return  # typed failure: acceptable, the caller can react
        resumed = _durable_run(store, resume=point,
                               attempt=point.attempt + 1)
        _assert_bit_identical(resumed, store, run, ref_path)


def _crc_sanity():
    """Guard the helper itself: the manifest CRC covers the body."""
    body = {"magic": "rnr-safe-run-store", "version": RUN_STORE_VERSION}
    raw = encode_manifest(body)
    parsed = json.loads(raw)
    from repro.store import canonical_body

    assert parsed["crc"] == zlib.crc32(canonical_body(body))


def test_manifest_crc_matches_canonical_body():
    _crc_sanity()
