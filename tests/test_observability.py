"""Telemetry must observe the system without perturbing it.

Three contracts pinned here:

* **Zero interference** — a pipelined run with ``config.telemetry`` on
  produces bit-identical log bytes, final CPU state, and verdicts to the
  same run with it off, including under every recoverable transport
  fault (telemetry composes with fault injection, it never masks it).
* **Ground truth** — the metrics snapshot agrees exactly with the run's
  own results: instructions retired, log records/bytes, checkpoints,
  alarm dispositions, AR verdicts.  No sampled approximations.
* **Well-formed exports** — the Chrome trace is loadable Trace Event
  Format with one span per phase, per checkpoint, and per AR; JSONL
  parses line by line; Prometheus text renders every metric family.
"""

import dataclasses
import json
import pickle

import pytest

from repro.core.fleet import FleetSession, run_fleet
from repro.core.parallel import (
    RecoveryAudit,
    RecoveryEvent,
    record_and_replay_pipelined,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.obs import (
    HISTOGRAM_BUCKETS,
    Counter,
    Gauge,
    HeartbeatBoard,
    HeartbeatRow,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SpanTracer,
    TaggedCounter,
    Telemetry,
    TelemetrySnapshot,
    bucket_bounds,
    bucket_index,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from repro.replay.checkpointing import CheckpointingOptions
from repro.rnr.recorder import RecorderOptions
from repro.workloads import build_workload, profile_by_name

BUDGET = 40_000
OPTIONS = RecorderOptions(max_instructions=BUDGET)
CR = CheckpointingOptions(period_s=0.2)
FRAME_RECORDS = 8
QUEUE_DEPTH = 4


def _spec(profile: str = "apache", telemetry: bool = False):
    spec = build_workload(profile_by_name(profile))
    if telemetry:
        spec = dataclasses.replace(
            spec, config=dataclasses.replace(spec.config, telemetry=True),
        )
    return spec


def _run(spec, **kwargs):
    return record_and_replay_pipelined(
        spec, OPTIONS, CR, backend="thread",
        frame_records=FRAME_RECORDS, queue_depth=QUEUE_DEPTH, **kwargs,
    )


def _verdict_key(verdict):
    return (verdict.kind, verdict.benign_cause, verdict.alarm.icount,
            verdict.alarm.kind, verdict.alarm.tid)


@pytest.fixture(scope="module")
def baseline():
    """One telemetry-off pipelined run every telemetry-on run must match."""
    return _run(_spec())


@pytest.fixture(scope="module")
def observed():
    """The same run with telemetry on."""
    return _run(_spec(telemetry=True))


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------


class TestHistogramBuckets:
    def test_every_value_lands_inside_its_bucket_bounds(self):
        for value in [0, 1, 2, 3, 7, 8, 255, 256, 1 << 20, (1 << 63) - 1]:
            index = bucket_index(value)
            low, high = bucket_bounds(index)
            if index < HISTOGRAM_BUCKETS - 1:
                assert low <= value < high, (value, index, low, high)

    def test_negative_clamps_to_zero_bucket(self):
        assert bucket_index(-5) == 0

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_index(1 << 200) == HISTOGRAM_BUCKETS - 1

    def test_bounds_tile_the_integers(self):
        # Consecutive buckets must share an edge: no value can fall
        # between buckets or into two of them.
        for index in range(1, 66):
            prev_low, prev_high = bucket_bounds(index - 1)
            low, _ = bucket_bounds(index)
            assert low == prev_high

    def test_observe_tracks_total_count_mean_max(self):
        hist = Histogram()
        for value in [1, 2, 3, 100]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 106
        assert hist.max_value == 100
        assert hist.mean == pytest.approx(26.5)

    def test_merge_is_elementwise_addition(self):
        left, right, both = Histogram(), Histogram(), Histogram()
        import random

        rng = random.Random(7)
        for _ in range(500):
            value = rng.randrange(0, 1 << 40)
            (left if rng.random() < 0.5 else right).observe(value)
            both.observe(value)
        left.merge(right)
        assert left.counts == both.counts
        assert left.total == both.total
        assert left.count == both.count
        assert left.max_value == both.max_value


class TestCountersAndSnapshots:
    def test_counter_and_gauge_roundtrip(self):
        counter = Counter()
        counter.add(5)
        counter.add(3, events=2)
        assert (counter.value, counter.events) == (8, 3)
        gauge = Gauge()
        gauge.set(10)
        gauge.set(4)
        assert (gauge.value, gauge.max_value) == (4, 10)

    def test_tagged_counter_cells(self):
        tagged = TaggedCounter()
        tagged.add("a", 2)
        tagged.add("a", 3)
        tagged.add("b", 1)
        assert tagged.value("a") == 5
        assert tagged.events("a") == 2
        assert tagged.total == 6

    def test_snapshot_merge_matches_single_registry(self):
        separate = [MetricsRegistry(), MetricsRegistry()]
        combined = MetricsRegistry()
        for turn, registry in enumerate(separate):
            registry.counter("c").add(turn + 1)
            registry.tagged("t").add("x", turn + 10)
            registry.histogram("h").observe(turn + 100)
            combined.counter("c").add(turn + 1)
            combined.tagged("t").add("x", turn + 10)
            combined.histogram("h").observe(turn + 100)
        merged = separate[0].snapshot().merge(separate[1].snapshot())
        want = combined.snapshot()
        assert merged.counters == want.counters
        assert merged.tagged == want.tagged
        assert merged.histograms == want.histograms

    def test_snapshot_pickles(self):
        registry = MetricsRegistry()
        registry.counter("c").add(1)
        registry.gauge("g").set(2)
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snapshot.counter_value("c") == 1
        assert snapshot.gauge_value("g") == 2

    def test_prometheus_renders_every_family(self):
        registry = MetricsRegistry()
        registry.counter("log.bytes").add(42)
        registry.tagged("vm.exits").add("mmio", 3)
        registry.gauge("resident").set(7)
        registry.histogram("batch").observe(9)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_log_bytes counter" in text
        assert "repro_log_bytes 42" in text
        assert 'repro_vm_exits{tag="mmio"} 3' in text
        assert "# TYPE repro_resident gauge" in text
        assert 'repro_batch_bucket{le="+Inf"} 1' in text
        assert "repro_batch_sum 9" in text


# ----------------------------------------------------------------------
# span tracer and exports
# ----------------------------------------------------------------------


class TestSpanTracer:
    def test_span_context_manager_stamps_icounts(self):
        clock = {"icount": 100}
        tracer = SpanTracer("record")
        with tracer.span("phase", "phase", lambda: clock["icount"]):
            clock["icount"] = 250
        (event,) = tracer.events
        assert event.icount_window == (100, 250)
        assert event.end_wall_ns >= event.begin_wall_ns

    def test_span_records_error_on_exception(self):
        tracer = SpanTracer("cr")
        with pytest.raises(ValueError):
            with tracer.span("work", "phase", lambda: 0):
                raise ValueError("boom")
        (event,) = tracer.events
        assert dict(event.args)["error"] == "ValueError"

    def test_chrome_trace_schema(self):
        tracer = SpanTracer("record")
        token = tracer.begin("record", "phase", 0)
        tracer.end(token, 500, stop="budget")
        trace = to_chrome_trace(tracer.events, label="unit")
        json.dumps(trace)  # serializable end to end
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 1 and len(meta) == 1
        (span,) = complete
        assert span["name"] == "record"
        assert span["pid"] == 1 and span["tid"] == 1
        assert span["ts"] == 0.0 and span["dur"] >= 0
        assert span["args"]["icount_begin"] == 0
        assert span["args"]["icount_end"] == 500
        assert meta[0]["args"]["name"] == "record"

    def test_jsonl_parses_line_by_line(self):
        tracer = SpanTracer("ar")
        tracer.instant("dismiss", "alarm", 42, cause="underflow")
        lines = to_jsonl(tracer.events).splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["actor"] == "ar"
        assert record["icount"] == [42, 42]
        assert record["args"]["cause"] == "underflow"


# ----------------------------------------------------------------------
# the nil sink
# ----------------------------------------------------------------------


class TestNilSink:
    def test_for_config_returns_none_when_disabled(self):
        assert Telemetry.for_config(_spec().config, "record") is None

    def test_for_config_returns_instance_when_enabled(self):
        tel = Telemetry.for_config(_spec(telemetry=True).config, "record")
        assert tel is not None and tel.actor == "record"

    def test_heartbeat_forces_an_instance_without_telemetry(self):
        board = HeartbeatBoard()
        tel = Telemetry.for_config(_spec().config, "record",
                                   heartbeat=board.reporter(0))
        assert tel is not None


# ----------------------------------------------------------------------
# zero interference: telemetry on == telemetry off, bit for bit
# ----------------------------------------------------------------------


class TestDifferential:
    def test_log_bytes_identical(self, baseline, observed):
        assert (baseline.recording.log.to_bytes()
                == observed.recording.log.to_bytes())

    def test_final_cpu_state_identical(self, baseline, observed):
        assert baseline.final_cpu_state == observed.final_cpu_state

    def test_checkpoints_identical(self, baseline, observed):
        base = [(c.icount, c.cycles) for c in baseline.checkpointing.store.all()]
        obs = [(c.icount, c.cycles) for c in observed.checkpointing.store.all()]
        assert base == obs

    def test_verdicts_identical(self, baseline, observed):
        assert ([_verdict_key(v) for v in baseline.resolution.verdicts]
                == [_verdict_key(v) for v in observed.resolution.verdicts])

    def test_off_run_carries_no_telemetry(self, baseline):
        assert baseline.telemetry is None
        assert baseline.recording.telemetry is None
        assert baseline.checkpointing.telemetry is None

    @pytest.mark.parametrize("fault", [
        FaultSpec(FaultKind.CORRUPT_FRAME, target=2),
        FaultSpec(FaultKind.DROP_FRAME, target=2),
        FaultSpec(FaultKind.TRUNCATE_FRAME, target=1),
    ])
    def test_identical_under_transport_faults(self, baseline, fault):
        run = _run(_spec(telemetry=True), fault_plan=FaultPlan([fault]))
        assert run.recovery is not None
        assert (run.recording.log.to_bytes()
                == baseline.recording.log.to_bytes())
        assert run.final_cpu_state == baseline.final_cpu_state
        assert ([_verdict_key(v) for v in run.resolution.verdicts]
                == [_verdict_key(v) for v in baseline.resolution.verdicts])
        # The heal itself is observable: a typed audit, a tagged counter,
        # and a recover span covering the re-replayed window.
        assert isinstance(run.recovery, RecoveryAudit)
        assert run.telemetry.metrics.tagged_total("pipeline.recoveries") == 1
        (span,) = run.telemetry.spans_named("recover")
        assert span.icount_window[1] >= span.icount_window[0]
        assert run.telemetry.metrics.tagged_total("faults.frames") == 1


# ----------------------------------------------------------------------
# ground truth
# ----------------------------------------------------------------------


class TestGroundTruth:
    def test_instructions_match(self, observed):
        metrics = observed.telemetry.metrics
        assert (metrics.counter_value("record.instructions")
                == observed.recording.metrics.instructions)
        assert (metrics.counter_value("cr.instructions")
                == observed.checkpointing.replay.metrics.instructions)

    def test_log_records_and_bytes_match(self, observed):
        metrics = observed.telemetry.metrics
        assert (metrics.counter_value("record.log_records")
                == len(observed.recording.log))
        assert (metrics.counter_value("record.log_bytes")
                == observed.recording.metrics.log_bytes)
        by_tag = metrics.tagged.get("record.log_records_by_tag", {})
        assert (sum(cell[1] for cell in by_tag.values())
                == len(observed.recording.log))

    def test_checkpoint_counts_match(self, observed):
        metrics = observed.telemetry.metrics
        assert (metrics.counter_value("checkpoints_taken")
                >= len(observed.checkpointing.store))

    def test_alarm_dispositions_match(self, observed):
        metrics = observed.telemetry.metrics
        assert (metrics.tagged_value("alarms", "seen")
                == observed.checkpointing.alarms_seen)
        assert (metrics.tagged_value("alarms", "dismissed_by_cr")
                == observed.checkpointing.dismissed_underflows)
        assert (metrics.tagged_value("alarms", "pending")
                == len(observed.checkpointing.pending_alarms))

    def test_verdict_counts_match(self, observed):
        metrics = observed.telemetry.metrics
        verdicts = observed.resolution.verdicts
        assert metrics.tagged_total("ar.verdicts") == len(verdicts)
        for verdict in verdicts:
            assert metrics.tagged_value("ar.verdicts",
                                        verdict.kind.value) >= 1

    def test_overhead_cycles_adopt_the_cycle_account(self, observed):
        # One source of truth: the snapshot's overhead cells are the
        # recorder machine's CycleAccount cells, not a recount.
        metrics = observed.telemetry.metrics
        account_total = observed.recording.metrics.account.total_overhead
        assert metrics.tagged.get("record.overhead_cycles")
        snapshot_total = sum(
            cell[0]
            for cell in metrics.tagged["record.overhead_cycles"].values()
        )
        assert snapshot_total == account_total

    def test_one_span_per_phase_checkpoint_and_ar(self, observed):
        names = [span.name for span in observed.telemetry.spans]
        alarms = len(observed.checkpointing.pending_alarms)
        assert names.count("record") == 1
        assert names.count("replay") >= 1  # the CR pass (+ one per AR)
        assert names.count("pipeline") == 1
        assert (names.count("take_checkpoint")
                >= len(observed.checkpointing.store))
        assert names.count("analyze") == alarms
        assert names.count("ar_dispatch") == alarms

    def test_chrome_trace_loads(self, observed):
        trace = json.loads(json.dumps(observed.telemetry.chrome_trace()))
        assert trace["traceEvents"]
        phases = [e for e in trace["traceEvents"]
                  if e.get("ph") == "X" and e["cat"] == "phase"]
        assert len(phases) >= 2  # record + cr at minimum


# ----------------------------------------------------------------------
# structured recovery audit
# ----------------------------------------------------------------------


class TestRecoveryAudit:
    def test_event_renders_the_legacy_string(self):
        event = RecoveryEvent(kind="cr-resumed", cause="CRC mismatch",
                              window=(120_000, 200_000))
        assert str(event) == "cr-resumed@120000: CRC mismatch"
        assert event.icount == 120_000

    def test_restart_renders_without_anchor(self):
        event = RecoveryEvent(kind="cr-restarted", cause="worker died")
        assert str(event) == "cr-restarted: worker died"

    def test_audit_string_compat(self):
        audit = RecoveryAudit((
            RecoveryEvent(kind="cr-resumed", cause="sequence gap",
                          window=(10, 20)),
        ))
        assert audit.startswith("cr-resumed@10")
        assert "sequence gap" in audit
        assert len(audit) == 1
        assert audit[0].kind == "cr-resumed"

    def test_pipeline_heal_returns_typed_events(self, baseline):
        plan = FaultPlan([FaultSpec(FaultKind.DROP_FRAME, target=2)])
        run = _run(_spec(), fault_plan=plan)
        assert isinstance(run.recovery, RecoveryAudit)
        (event,) = run.recovery
        assert event.kind in ("cr-resumed", "cr-restarted")
        assert event.window[1] >= event.window[0]
        assert run.recovery.startswith(event.kind)


# ----------------------------------------------------------------------
# heartbeats
# ----------------------------------------------------------------------


class TestHeartbeat:
    def test_reporter_publishes_rows_in_index_order(self):
        board = HeartbeatBoard()
        board.reporter(1).publish("record", icount=50_000)
        board.reporter(0).publish("cr", icount=20_000, frames=3)
        rows = board.rows()
        assert [row.index for row in rows] == [0, 1]
        assert rows[0].state == "cr" and rows[0].frames == 3
        assert rows[1].icount == 50_000

    def test_stale_row_flags_wedged_but_terminal_never_does(self):
        lively = HeartbeatRow(index=0, state="record", icount=1,
                              frames=0, wall=1000.0)
        done = HeartbeatRow(index=1, state="done", icount=1,
                            frames=0, wall=1000.0)
        now = 1000.0 + 60.0
        assert lively.is_stale(now)
        assert not done.is_stale(now)

    def test_render_marks_wedged_rows(self):
        board = HeartbeatBoard()
        board.reporter(0).publish("record", icount=10)
        rows = board.rows()
        stale_now = rows[0].wall + 60.0
        table = board.render(total=1, now=stale_now)
        assert "WEDGED?" in table
        assert "0/1 sessions finished" in table

    def test_reporter_pickles(self):
        board = HeartbeatBoard()
        reporter = pickle.loads(pickle.dumps(board.reporter(2)))
        assert reporter.index == 2

    def test_telemetry_beats_are_icount_rate_limited(self):
        board = HeartbeatBoard()
        tel = Telemetry("record", heartbeat=board.reporter(0),
                        beat_interval=1000)
        tel.maybe_beat("record", 500)       # below the interval: dropped
        assert board.rows() == []
        tel.maybe_beat("record", 1500)      # 1500-0 >= 1000: published
        tel.maybe_beat("record", 1600)      # 100 since last: dropped
        (row,) = board.rows()
        assert row.icount == 1500


# ----------------------------------------------------------------------
# fleet aggregation
# ----------------------------------------------------------------------


class TestFleetTelemetry:
    @pytest.fixture(scope="class")
    def sessions(self):
        return [FleetSession(benchmark="fileio", seed=seed,
                             max_instructions=60_000)
                for seed in (1, 2)]

    def test_fleet_off_carries_no_telemetry(self, sessions):
        fleet = run_fleet(sessions, backend="thread")
        assert fleet.telemetry is None
        assert all(r.telemetry is None for r in fleet.results)

    def test_fleet_rollup_merges_sessions(self, sessions):
        board = HeartbeatBoard()
        fleet = run_fleet(sessions, backend="thread", telemetry=True,
                          heartbeat=board)
        assert all(result.ok for result in fleet.results)
        assert fleet.telemetry is not None
        metrics = fleet.telemetry.metrics
        assert (metrics.counter_value("record.instructions")
                == fleet.total_instructions)
        names = [span.name for span in fleet.telemetry.spans]
        assert names.count("session") == len(sessions)
        assert all(row.state == "done" for row in board.rows())

    def test_heartbeat_alone_does_not_attach_snapshots(self, sessions):
        board = HeartbeatBoard()
        fleet = run_fleet(sessions, backend="thread", heartbeat=board)
        assert fleet.telemetry is None
        assert board.rows()  # ...but the board was still fed


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_stats_tables(self, capsys):
        from repro.cli import main

        assert main(["stats", "fileio", "--budget", "60000"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "record.instructions" in out

    def test_stats_prom(self, capsys):
        from repro.cli import main

        assert main(["stats", "fileio", "--budget", "60000", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_record_instructions counter" in out
        assert "repro_record_instructions 60000" in out

    def test_stats_trace_writes_loadable_json(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "trace.json"
        assert main(["stats", "fileio", "--budget", "60000",
                     "--trace", str(target)]) == 0
        capsys.readouterr()
        trace = json.loads(target.read_text())
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_fleet_watch_renders_the_board(self, capsys):
        from repro.cli import main

        code = main(["fleet", "fileio", "--width", "2",
                     "--budget", "60000", "--pool", "thread",
                     "--watch", "--watch-interval", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sessions finished" in out
        assert "fleet of 2 sessions" in out


# ----------------------------------------------------------------------
# snapshot merge semantics at the run level
# ----------------------------------------------------------------------


class TestTelemetrySnapshot:
    def test_merged_skips_none(self):
        keep = TelemetrySnapshot(actor="a")
        keep.metrics.counters["x"] = [1, 1]
        merged = TelemetrySnapshot.merged([None, keep, None], actor="run")
        assert merged.actor == "run"
        assert merged.metrics.counter_value("x") == 1

    def test_run_snapshot_pickles(self, observed):
        clone = pickle.loads(pickle.dumps(observed.telemetry))
        assert (clone.metrics.counter_value("record.instructions")
                == observed.telemetry.metrics.counter_value(
                    "record.instructions"))
        assert len(clone.spans) == len(observed.telemetry.spans)

    def test_tables_render(self, observed):
        text = observed.telemetry.tables()
        assert "phase" in text
        assert "record.instructions" in text


# ----------------------------------------------------------------------
# Prometheus exposition grammar
# ----------------------------------------------------------------------


def _validate_exposition(text: str):
    """Assert ``text`` obeys the exposition-format grammar.

    Every series family has exactly one ``# TYPE`` line that precedes its
    first sample, all of a family's samples are contiguous, and label
    values only use the legal escapes (``\\\\``, ``\\"``, ``\\n``).
    """
    import re

    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'                      # metric name
        r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*='                     # one label...
        r'"(?:[^"\\\n]|\\\\|\\"|\\n)*"\})?'                 # ...legal escapes
        r' -?[0-9][0-9.e+]*$')
    typed: dict[str, str] = {}
    closed: set[str] = set()
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            assert family not in typed, f"duplicate TYPE for {family}"
            typed[family] = kind
            continue
        assert not line.startswith("#"), line
        match = sample_re.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group(1)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and typed.get(base) == "histogram":
                family = base
        assert family in typed, f"sample {name} has no # TYPE line"
        if family != current:
            assert family not in closed, \
                f"family {family} is not contiguous"
            if current is not None:
                closed.add(current)
            current = family


class TestPrometheusGrammar:
    def test_escape_label_value_covers_the_three_escapes(self):
        from repro.obs import escape_label_value

        assert escape_label_value('a\\b') == 'a\\\\b'
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value('a\nb') == 'a\\nb'
        assert escape_label_value('plain') == 'plain'

    def test_hostile_tags_render_escaped(self):
        registry = MetricsRegistry()
        registry.tagged("errors").add('path\\with "quotes"\nand newline', 1)
        text = to_prometheus(registry.snapshot())
        assert ('repro_errors{tag="path\\\\with \\"quotes\\"\\nand '
                'newline"} 1') in text
        _validate_exposition(text)

    def test_every_tagged_series_family_gets_a_type_line(self):
        registry = MetricsRegistry()
        registry.tagged("vm.exits").add("mmio", 3)
        registry.tagged("vm.exits").add("pio", 2)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_vm_exits counter" in text
        assert "# TYPE repro_vm_exits_events counter" in text
        # Families must be contiguous: both base samples, then both
        # _events samples — never interleaved per tag.
        base = [l for l in text.splitlines()
                if l.startswith("repro_vm_exits{")]
        events = [l for l in text.splitlines()
                  if l.startswith("repro_vm_exits_events{")]
        assert len(base) == len(events) == 2
        _validate_exposition(text)

    def test_derived_series_are_typed(self):
        registry = MetricsRegistry()
        registry.counter("log.bytes").add(42)
        registry.gauge("resident").set(7)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_log_bytes_events counter" in text
        assert "# TYPE repro_resident_max gauge" in text
        _validate_exposition(text)

    def test_a_full_run_snapshot_validates(self, observed):
        _validate_exposition(observed.telemetry.prometheus())


# ----------------------------------------------------------------------
# heartbeat staleness edges (the supervisor's heal trigger)
# ----------------------------------------------------------------------


class TestStalenessEdge:
    def test_not_stale_at_exactly_the_deadline(self):
        # The supervisor heals on `age > heal_deadline_s`; is_stale must
        # use the same strict inequality or the two flap at the boundary.
        row = HeartbeatRow(index=0, state="record", icount=1, frames=0,
                           wall=1000.0)
        deadline = 5.0
        assert not row.is_stale(now=1000.0 + deadline,
                                stale_after_s=deadline)
        assert row.is_stale(now=1000.0 + deadline + 1e-6,
                            stale_after_s=deadline)

    def test_default_threshold_matches_the_module_constant(self):
        from repro.obs import STALE_AFTER_S

        row = HeartbeatRow(index=0, state="cr", icount=1, frames=0,
                           wall=0.0)
        assert not row.is_stale(now=STALE_AFTER_S)
        assert row.is_stale(now=STALE_AFTER_S + 1e-6)

    def test_terminal_states_are_exempt_at_any_age(self):
        for state in ("done", "failed"):
            row = HeartbeatRow(index=0, state=state, icount=1, frames=0,
                               wall=0.0)
            assert not row.is_stale(now=1e9)
