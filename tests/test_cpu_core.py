"""Tests for the CPU execution engine."""

import pytest

from repro.cpu import Cpu, ExitControls, RopAlarmKind, VmExitReason
from repro.cpu.core import FaultKind, IRQ_VECTOR_REG, SYSCALL_NUM_REG
from repro.isa import Asm
from repro.isa.opcodes import SP

from tests.conftest import DATA_BASE, STACK_TOP, build_machine, run_until_exit


def step_n(cpu, count):
    exits = []
    for _ in range(count):
        exit_event = cpu.step()
        if exit_event is not None:
            exits.append(exit_event)
    return exits


class TestAluAndDataMovement:
    def test_arithmetic(self):
        asm = Asm(base=0x100)
        asm.li(1, 6)
        asm.li(2, 7)
        asm.mul(3, 1, 2)
        asm.sub(4, 3, 1)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[3] == 42
        assert cpu.regs[4] == 36

    def test_wraparound_masks_to_64_bits(self):
        asm = Asm(base=0x100)
        asm.li(1, -1)
        asm.li(2, 1)
        asm.add(3, 1, 2)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[3] == 0

    def test_logic_and_shifts(self):
        asm = Asm(base=0x100)
        asm.li(1, 0b1100)
        asm.li(2, 0b1010)
        asm.and_(3, 1, 2)
        asm.or_(4, 1, 2)
        asm.xor(5, 1, 2)
        asm.li(6, 2)
        asm.shl(7, 1, 6)
        asm.shr(8, 1, 6)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[3] == 0b1000
        assert cpu.regs[4] == 0b1110
        assert cpu.regs[5] == 0b0110
        assert cpu.regs[7] == 0b110000
        assert cpu.regs[8] == 0b11

    def test_load_store(self):
        asm = Asm(base=0x100)
        asm.li(1, DATA_BASE)
        asm.li(2, 99)
        asm.st(1, 2, 5)
        asm.ld(3, 1, 5)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[3] == 99
        assert cpu.memory.read_word(DATA_BASE + 5) == 99

    def test_push_pop(self):
        asm = Asm(base=0x100)
        asm.li(1, 11)
        asm.push(1)
        asm.li(1, 0)
        asm.pop(2)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[2] == 11
        assert cpu.regs[SP] == STACK_TOP


class TestBranches:
    def test_conditional_branches(self):
        asm = Asm(base=0x100)
        asm.li(1, 5)
        asm.cmpi(1, 5)
        asm.jz("equal")
        asm.li(9, 111)
        asm.hlt()
        asm.label("equal")
        asm.li(9, 222)
        asm.cmpi(1, 10)
        asm.jlt("less")
        asm.hlt()
        asm.label("less")
        asm.li(8, 333)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[9] == 222
        assert cpu.regs[8] == 333

    def test_jge_not_taken_when_less(self):
        asm = Asm(base=0x100)
        asm.li(1, 1)
        asm.cmpi(1, 2)
        asm.jge("skip")
        asm.li(9, 1)
        asm.label("skip")
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[9] == 1

    def test_indirect_jump(self):
        asm = Asm(base=0x100)
        asm.li(1, "target")
        asm.jmpi(1)
        asm.hlt()
        asm.label("target")
        asm.li(9, 7)
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.regs[9] == 7


class TestCallRetAndRas:
    def _nested_calls(self, depth):
        asm = Asm(base=0x100)
        asm.call("f0")
        asm.hlt()
        for level in range(depth):
            asm.label(f"f{level}")
            if level + 1 < depth:
                asm.call(f"f{level + 1}")
            asm.ret()
        return asm

    def test_ras_tracks_nesting(self):
        cpu = build_machine(self._nested_calls(3))
        run_until_exit(cpu)
        assert cpu.ras.empty

    def test_no_alarm_on_clean_execution(self):
        controls = ExitControls(ras_alarm_exits=True)
        cpu = build_machine(self._nested_calls(5), controls=controls)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.HLT

    def test_mismatch_alarm_on_corrupted_return_address(self):
        asm = Asm(base=0x100)
        asm.call("victim")
        asm.hlt()
        asm.label("victim")
        # Overwrite the on-stack return address, as a buffer overflow would.
        asm.li(1, "gadget")
        asm.st(SP, 1, 0)
        asm.ret()
        asm.label("gadget")
        asm.hlt()
        controls = ExitControls(ras_alarm_exits=True)
        cpu = build_machine(asm, controls=controls)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.ROP_ALARM
        assert exit_event.alarm_kind is RopAlarmKind.MISMATCH
        assert exit_event.predicted != exit_event.actual

    def test_underflow_alarm_when_ras_empty(self):
        asm = Asm(base=0x100)
        # Manufacture a return with no prior call: push a target, then ret.
        asm.li(1, "after")
        asm.push(1)
        asm.ret()
        asm.label("after")
        asm.hlt()
        controls = ExitControls(ras_alarm_exits=True)
        cpu = build_machine(asm, controls=controls)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.ROP_ALARM
        assert exit_event.alarm_kind is RopAlarmKind.UNDERFLOW

    def test_whitelisted_return_skips_pop_and_alarm(self):
        asm = Asm(base=0x100)
        asm.call("helper")          # leaves one RAS entry during the call
        asm.hlt()
        asm.label("helper")
        asm.li(1, "landing")
        asm.push(1)
        asm.label("np_ret")
        asm.ret()                   # non-procedural return
        asm.label("landing")
        asm.ret()                   # the real return of helper
        image_probe = asm.assemble()
        controls = ExitControls(ras_alarm_exits=True)
        cpu = build_machine(asm, controls=controls)
        cpu.ret_whitelist = image_probe.symbols["np_ret"]
        cpu.tar_whitelist = frozenset({image_probe.symbols["landing"]})
        exit_event = run_until_exit(cpu)
        # The whitelisted return must not pop the RAS, so the final real
        # return still predicts correctly and we reach HLT with no alarm.
        assert exit_event.reason is VmExitReason.HLT

    def test_whitelisted_return_to_bad_target_alarms(self):
        asm = Asm(base=0x100)
        asm.li(1, "elsewhere")
        asm.push(1)
        asm.label("np_ret")
        asm.ret()
        asm.label("elsewhere")
        asm.hlt()
        image_probe = asm.assemble()
        controls = ExitControls(ras_alarm_exits=True)
        cpu = build_machine(asm, controls=controls)
        cpu.ret_whitelist = image_probe.symbols["np_ret"]
        cpu.tar_whitelist = frozenset({0xDEAD})
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.ROP_ALARM
        assert exit_event.alarm_kind is RopAlarmKind.WHITELIST_TARGET

    def test_evict_exit_fires_when_armed(self):
        depth = 50  # deeper than the default 48-entry RAS
        controls = ExitControls(ras_evict_exits=True)
        cpu = build_machine(self._nested_calls(depth), controls=controls)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.RAS_EVICT
        assert exit_event.evicted != 0

    def test_underflow_after_eviction_without_alarms(self):
        depth = 50
        cpu = build_machine(self._nested_calls(depth))
        exit_event = run_until_exit(cpu)
        # Alarms disabled: execution completes despite the deep nesting.
        assert exit_event.reason is VmExitReason.HLT

    def test_alarms_disabled_on_replay_platform(self):
        asm = Asm(base=0x100)
        asm.li(1, "after")
        asm.push(1)
        asm.ret()
        asm.label("after")
        asm.hlt()
        cpu = build_machine(asm)  # default controls: no alarm exits
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.HLT

    def test_call_ret_trap_mode(self):
        controls = ExitControls(trap_call_ret=True)
        cpu = build_machine(self._nested_calls(2), controls=controls)
        exits = []
        while True:
            exit_event = run_until_exit(cpu)
            exits.append(exit_event.reason)
            if exit_event.reason is VmExitReason.HLT:
                break
        assert exits.count(VmExitReason.CALL_TRAP) == 2
        assert exits.count(VmExitReason.RET_TRAP) == 2


class TestPrivilegeAndTraps:
    def test_syscall_transfers_to_kernel(self):
        asm = Asm(base=0x100)
        asm.label("kernel_entry")
        asm.jmp("handler")
        asm.label("user_code")
        asm.syscall(7)
        asm.hlt()  # unreachable in user mode (privileged)
        asm.label("handler")
        asm.mov(1, SYSCALL_NUM_REG)
        asm.hlt()
        image_probe = asm.assemble()
        cpu = build_machine(asm, user=True)
        cpu.vec_syscall = image_probe.symbols["kernel_entry"]
        cpu.pc = image_probe.symbols["user_code"]
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.HLT
        assert cpu.regs[1] == 7
        assert not cpu.user

    def test_sysret_returns_to_user(self):
        asm = Asm(base=0x100)
        asm.label("kernel_entry")
        asm.sysret()
        asm.label("user_code")
        asm.syscall(1)
        asm.li(9, 42)
        asm.label("spin")
        asm.jmp("spin")
        image_probe = asm.assemble()
        cpu = build_machine(asm, user=True)
        cpu.vec_syscall = image_probe.symbols["kernel_entry"]
        cpu.pc = image_probe.symbols["user_code"]
        step_n(cpu, 5)
        assert cpu.user
        assert cpu.regs[9] == 42

    def test_privileged_instruction_faults_in_user_mode(self):
        asm = Asm(base=0x100)
        asm.label("fault_handler")
        asm.mov(1, IRQ_VECTOR_REG)
        asm.hlt()
        asm.label("user_code")
        asm.cli()
        image_probe = asm.assemble()
        cpu = build_machine(asm, user=True)
        cpu.vec_fault = image_probe.symbols["fault_handler"]
        cpu.pc = image_probe.symbols["user_code"]
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.HLT
        assert cpu.regs[1] == int(FaultKind.PRIVILEGE)

    def test_syscall_in_kernel_mode_faults(self):
        asm = Asm(base=0x100)
        asm.label("fault_handler")
        asm.mov(1, IRQ_VECTOR_REG)
        asm.hlt()
        asm.label("entry")
        asm.syscall(1)
        image_probe = asm.assemble()
        cpu = build_machine(asm)
        cpu.vec_fault = image_probe.symbols["fault_handler"]
        cpu.pc = image_probe.symbols["entry"]
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.HLT
        assert cpu.regs[1] == int(FaultKind.PRIVILEGE)

    def test_access_violation_vectors_to_fault_handler(self):
        asm = Asm(base=0x100)
        asm.label("fault_handler")
        asm.mov(1, IRQ_VECTOR_REG)
        asm.hlt()
        asm.label("entry")
        asm.li(2, 0x500000)
        asm.ld(3, 2, 0)
        image_probe = asm.assemble()
        cpu = build_machine(asm)
        cpu.vec_fault = image_probe.symbols["fault_handler"]
        cpu.pc = image_probe.symbols["entry"]
        exit_event = run_until_exit(cpu)
        assert cpu.regs[1] == int(FaultKind.ACCESS)

    def test_divide_by_zero_faults(self):
        asm = Asm(base=0x100)
        asm.label("fault_handler")
        asm.mov(1, IRQ_VECTOR_REG)
        asm.hlt()
        asm.label("entry")
        asm.li(2, 10)
        asm.li(3, 0)
        asm.div(4, 2, 3)
        image_probe = asm.assemble()
        cpu = build_machine(asm)
        cpu.vec_fault = image_probe.symbols["fault_handler"]
        cpu.pc = image_probe.symbols["entry"]
        run_until_exit(cpu)
        assert cpu.regs[1] == int(FaultKind.DIV_ZERO)

    def test_triple_fault_without_handler(self):
        asm = Asm(base=0x100)
        asm.li(2, 0x500000)
        asm.ld(3, 2, 0)
        cpu = build_machine(asm)  # vec_fault unset
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.TRIPLE_FAULT

    def test_triple_fault_on_fault_loop(self):
        asm = Asm(base=0x100)
        asm.label("fault_handler")
        asm.li(2, 0x500000)
        asm.ld(3, 2, 0)  # handler faults again, forever
        asm.label("entry")
        asm.jmp("fault_handler")
        image_probe = asm.assemble()
        cpu = build_machine(asm)
        cpu.vec_fault = image_probe.symbols["fault_handler"]
        cpu.pc = image_probe.symbols["entry"]
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.TRIPLE_FAULT


class TestInterrupts:
    def _interrupt_machine(self):
        asm = Asm(base=0x100)
        asm.label("irq_entry")
        asm.mov(5, IRQ_VECTOR_REG)
        asm.iret()
        asm.label("main")
        asm.sti()
        asm.label("loop")
        asm.addi(1, 1, 1)
        asm.cmpi(1, 10)
        asm.jnz("loop")
        asm.hlt()
        image_probe = asm.assemble()
        cpu = build_machine(asm)
        cpu.vec_irq = image_probe.symbols["irq_entry"]
        cpu.pc = image_probe.symbols["main"]
        return cpu

    def test_interrupt_delivery_and_iret(self):
        cpu = self._interrupt_machine()
        step_n(cpu, 3)
        assert cpu.int_enabled
        saved_pc = cpu.pc
        cpu.raise_interrupt(4)
        assert not cpu.int_enabled
        assert cpu.pc == cpu.vec_irq
        run_until_exit(cpu)
        assert cpu.regs[5] == 4
        assert cpu.regs[1] == 10

    def test_iret_restores_flags(self):
        cpu = self._interrupt_machine()
        step_n(cpu, 3)
        cpu.raise_interrupt(2)
        step_n(cpu, 2)  # handler + iret
        assert cpu.int_enabled

    def test_interrupt_wakes_halted_cpu(self):
        asm = Asm(base=0x100)
        asm.label("irq_entry")
        asm.li(5, 1)
        asm.iret()
        asm.label("main")
        asm.sti()
        asm.hlt()
        asm.li(6, 2)
        asm.hlt()
        image_probe = asm.assemble()
        cpu = build_machine(asm)
        cpu.vec_irq = image_probe.symbols["irq_entry"]
        cpu.pc = image_probe.symbols["main"]
        run_until_exit(cpu)
        assert cpu.halted
        cpu.raise_interrupt(1)
        assert not cpu.halted
        run_until_exit(cpu)
        assert cpu.regs[5] == 1
        assert cpu.regs[6] == 2


class TestVmExitInstructions:
    def test_rdtsc_exits_when_trapped(self):
        asm = Asm(base=0x100)
        asm.rdtsc(3)
        asm.hlt()
        cpu = build_machine(asm)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.RDTSC
        assert exit_event.rd == 3

    def test_rdtsc_native_when_untrapped(self):
        asm = Asm(base=0x100)
        asm.rdtsc(3)
        asm.hlt()
        controls = ExitControls(trap_rdtsc=False, trap_rdrand=False)
        cpu = build_machine(asm, controls=controls)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.HLT

    def test_pio_exits(self):
        asm = Asm(base=0x100)
        asm.li(1, 0xAB)
        asm.outp(3, 1)
        asm.inp(2, 4)
        asm.hlt()
        cpu = build_machine(asm)
        out_exit = run_until_exit(cpu)
        assert out_exit.reason is VmExitReason.PIO_OUT
        assert out_exit.port == 3
        assert out_exit.value == 0xAB
        in_exit = run_until_exit(cpu)
        assert in_exit.reason is VmExitReason.PIO_IN
        cpu.regs[in_exit.rd] = 0x55  # hypervisor writes the result
        run_until_exit(cpu)
        assert cpu.regs[2] == 0x55

    def test_mmio_exits(self):
        asm = Asm(base=0x100)
        asm.li(1, 0x40000)
        asm.ld(2, 1, 0)
        asm.li(3, 9)
        asm.st(1, 3, 1)
        asm.hlt()
        cpu = build_machine(asm)
        cpu.memory.add_mmio_range(0x40000, 16)
        read_exit = run_until_exit(cpu)
        assert read_exit.reason is VmExitReason.MMIO_READ
        assert read_exit.addr == 0x40000
        cpu.regs[read_exit.rd] = 77
        write_exit = run_until_exit(cpu)
        assert write_exit.reason is VmExitReason.MMIO_WRITE
        assert write_exit.addr == 0x40001
        assert write_exit.value == 9
        run_until_exit(cpu)
        assert cpu.regs[2] == 77

    def test_int3_debug_exit(self):
        asm = Asm(base=0x100)
        asm.int3()
        asm.hlt()
        cpu = build_machine(asm)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.DEBUG

    def test_breakpoint_exit_and_skip(self):
        asm = Asm(base=0x100)
        asm.li(1, 5)
        asm.li(2, 6)
        asm.hlt()
        cpu = build_machine(asm)
        cpu.controls.breakpoints.add(0x101)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.BREAKPOINT
        assert exit_event.pc == 0x101
        assert cpu.regs[2] == 0  # instruction not yet executed
        cpu.skip_breakpoint_once()
        run_until_exit(cpu)
        assert cpu.regs[2] == 6


class TestJopCheck:
    def _machine_with_table(self):
        asm = Asm(base=0x100)
        asm.begin_function("main")
        asm.li(1, "common")
        asm.calli(1)
        asm.li(1, "common+1")   # mid-function target: stray
        asm.jmpi(1)
        asm.hlt()
        asm.end_function()
        asm.begin_function("common")
        asm.ret()
        asm.nop()
        asm.end_function()
        image_probe = asm.assemble()
        controls = ExitControls(jop_check=True)
        cpu = build_machine(asm, controls=controls)
        cpu.jop_table = (
            image_probe.functions["main"],
            image_probe.functions["common"],
        )
        return cpu

    def test_call_to_function_begin_is_legal(self):
        cpu = self._machine_with_table()
        exit_event = run_until_exit(cpu)
        # First exit is the stray jmpi alarm, not the legal calli.
        assert exit_event.reason is VmExitReason.JOP_ALARM

    def test_stray_target_reported(self):
        cpu = self._machine_with_table()
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.JOP_ALARM
        assert exit_event.target == exit_event.next_pc

    def test_intra_function_indirect_jump_is_legal(self):
        asm = Asm(base=0x100)
        asm.begin_function("main")
        asm.li(1, "inside")
        asm.jmpi(1)
        asm.label("inside")
        asm.hlt()
        asm.end_function()
        image_probe = asm.assemble()
        controls = ExitControls(jop_check=True)
        cpu = build_machine(asm, controls=controls)
        cpu.jop_table = (image_probe.functions["main"],)
        exit_event = run_until_exit(cpu)
        assert exit_event.reason is VmExitReason.HLT


class TestStateCapture:
    def test_capture_restore_round_trip(self):
        asm = Asm(base=0x100)
        asm.li(1, 5)
        asm.li(2, 6)
        asm.hlt()
        cpu = build_machine(asm)
        cpu.step()
        state = cpu.capture_state()
        cpu.step()
        cpu.restore_state(state)
        assert cpu.regs[1] == 5
        assert cpu.regs[2] == 0
        assert cpu.pc == 0x101
        cpu.step()
        assert cpu.regs[2] == 6

    def test_icount_advances_per_instruction(self):
        asm = Asm(base=0x100)
        asm.nop()
        asm.nop()
        asm.hlt()
        cpu = build_machine(asm)
        run_until_exit(cpu)
        assert cpu.icount == 3
