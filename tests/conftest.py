"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.cpu import Cpu, ExitControls
from repro.isa import Asm
from repro.memory import (
    PERM_EXEC,
    PERM_READ,
    PERM_USER,
    PERM_WRITE,
    PhysicalMemory,
)

CODE_BASE = 0x100
STACK_TOP = 0x2000
DATA_BASE = 0x3000


@pytest.fixture
def config() -> SimulationConfig:
    return DEFAULT_CONFIG


def build_machine(asm: Asm, config: SimulationConfig = DEFAULT_CONFIG,
                  controls: ExitControls | None = None,
                  user: bool = False) -> Cpu:
    """Assemble ``asm`` into a fresh memory and return a ready CPU.

    Maps a code region at the image base, a stack below ``STACK_TOP`` and a
    data region at ``DATA_BASE``.  The CPU starts at the image base.
    """
    image = asm.assemble()
    memory = PhysicalMemory(page_size=config.page_size)
    user_bit = PERM_USER if user else 0
    code_pages = max(1, (len(image.words) + config.page_size - 1)
                     // config.page_size + 1)
    memory.map_range(image.base, code_pages * config.page_size,
                     PERM_READ | PERM_EXEC | user_bit)
    memory.map_range(STACK_TOP - 4 * config.page_size, 4 * config.page_size,
                     PERM_READ | PERM_WRITE | user_bit)
    memory.map_range(DATA_BASE, 4 * config.page_size,
                     PERM_READ | PERM_WRITE | user_bit)
    for addr, word in image.items():
        memory.write_word(addr, word)
    cpu = Cpu(memory, config, controls=controls)
    cpu.pc = image.base
    cpu.regs[14] = STACK_TOP
    cpu.user = user
    return cpu


def run_until_exit(cpu: Cpu, limit: int = 100_000):
    """Step until a VM exit fires; fail the test on runaway execution."""
    for _ in range(limit):
        exit_event = cpu.step()
        if exit_event is not None:
            return exit_event
    raise AssertionError(f"no VM exit within {limit} steps (pc={cpu.pc:#x})")


def run_collect_exits(cpu: Cpu, limit: int = 100_000, stop_reasons=("hlt",)):
    """Run collecting every exit until one with a reason in stop_reasons."""
    exits = []
    for _ in range(limit):
        exit_event = cpu.step()
        if exit_event is None:
            continue
        exits.append(exit_event)
        if exit_event.reason.value in stop_reasons:
            return exits
    raise AssertionError(f"did not reach {stop_reasons} within {limit} steps")


# ---------------------------------------------------------------------------
# whole-system fixtures (scaled-down workloads, session-cached recordings)
# ---------------------------------------------------------------------------

import dataclasses
import functools

from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads import profile_by_name
from repro.workloads.suite import build_workload


def small_profile(name: str, **overrides):
    """A scaled-down benchmark profile for fast tests."""
    profile = profile_by_name(name)
    defaults = {"iterations": max(4, profile.iterations // 4)}
    if profile.packet_budget:
        demand = profile.tasks * defaults["iterations"] * profile.recv_per_iter
        defaults["packet_budget"] = demand + 4
    defaults.update(overrides)
    return dataclasses.replace(profile, **defaults)


def small_workload(name: str, seed: int = 2018, **overrides):
    """A machine spec for a scaled-down benchmark."""
    return build_workload(small_profile(name, **overrides), seed=seed)


@functools.lru_cache(maxsize=16)
def cached_recording(name: str, seed: int = 2018,
                     max_instructions: int = 1_200_000):
    """Record a scaled-down benchmark once per test session."""
    spec = small_workload(name, seed=seed)
    options = RecorderOptions(max_instructions=max_instructions)
    return spec, Recorder(spec, options).run()


@functools.lru_cache(maxsize=4)
def cached_attack_recording(max_instructions: int = 2_500_000):
    """Record the apache workload carrying the Figure 10 ROP exploit."""
    from repro.attacks import deliver_rop_attack

    spec, chain = deliver_rop_attack(small_workload("apache"))
    options = RecorderOptions(max_instructions=max_instructions)
    return spec, chain, Recorder(spec, options).run()
