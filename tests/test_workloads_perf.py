"""Tests for workload generation and the performance model."""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import WorkloadError
from repro.perf.account import (
    Category,
    CycleAccount,
    RECORDING_BREAKDOWN,
    REPLAY_BREAKDOWN,
)
from repro.perf.report import (
    OverheadBreakdown,
    RunMetrics,
    normalized_time,
)
from repro.workloads import (
    ALL_PROFILES,
    APACHE,
    BenchmarkProfile,
    build_workload,
    profile_by_name,
)
from repro.workloads.userprog import build_user_program
from repro.kernel.layout import DEFAULT_LAYOUT

from tests.conftest import small_workload


class TestProfiles:
    def test_all_five_paper_benchmarks_exist(self):
        names = {profile.name for profile in ALL_PROFILES}
        assert names == {"apache", "fileio", "make", "mysql", "radiosity"}

    def test_lookup_by_name(self):
        assert profile_by_name("apache") is APACHE
        with pytest.raises(WorkloadError):
            profile_by_name("postgres")

    def test_invalid_profiles_rejected(self):
        with pytest.raises(WorkloadError):
            BenchmarkProfile(name="x", tasks=0, iterations=1,
                             rdtsc_per_iter=0, compute_per_iter=1,
                             call_depth=1)
        with pytest.raises(WorkloadError):
            BenchmarkProfile(name="x", tasks=1, iterations=1,
                             rdtsc_per_iter=0, compute_per_iter=1,
                             call_depth=1, recv_per_iter=1)

    def test_event_mixes_match_the_paper(self):
        """Table 3 shapes: apache is the only network consumer; fileio and
        make touch disk; radiosity is compute-only."""
        apache = profile_by_name("apache")
        assert apache.recv_per_iter > 0 and apache.packet_budget > 0
        assert profile_by_name("fileio").disk_read_every > 0
        assert profile_by_name("make").spawn_every > 0
        radiosity = profile_by_name("radiosity")
        assert radiosity.recv_per_iter == 0
        assert radiosity.disk_read_every == 0
        mysql = profile_by_name("mysql")
        assert mysql.rdtsc_per_iter >= apache.rdtsc_per_iter


class TestProgramGeneration:
    def test_program_is_reproducible(self):
        first = build_user_program(APACHE, DEFAULT_LAYOUT, 1, 0x20000, 7)
        second = build_user_program(APACHE, DEFAULT_LAYOUT, 1, 0x20000, 7)
        assert first.image.words == second.image.words

    def test_programs_vary_by_tid(self):
        a = build_user_program(APACHE, DEFAULT_LAYOUT, 1, 0x20000, 7)
        b = build_user_program(APACHE, DEFAULT_LAYOUT, 2, 0x20000, 7)
        assert a.image.words != b.image.words

    def test_spec_is_reproducible(self):
        spec_a = small_workload("mysql", seed=5)
        spec_b = small_workload("mysql", seed=5)
        assert spec_a.packet_schedule == spec_b.packet_schedule
        assert [i.words for i in spec_a.user_images] == \
               [i.words for i in spec_b.user_images]

    def test_benign_payloads_terminate_early(self):
        spec = small_workload("apache")
        buffer = spec.kernel.layout.vulnerable_buffer_words
        for _, payload in spec.packet_schedule:
            # Every benign message has a zero well inside the parse buffer.
            assert 0 in payload[:buffer - 8]

    def test_too_many_tasks_rejected(self):
        profile = dataclasses.replace(profile_by_name("mysql"), tasks=9)
        with pytest.raises(WorkloadError):
            build_workload(profile)

    def test_packet_schedule_is_sorted(self):
        spec = small_workload("apache")
        cycles = [cycle for cycle, _ in spec.packet_schedule]
        assert cycles == sorted(cycles)


class TestCycleAccount:
    def test_charge_and_totals(self):
        account = CycleAccount()
        account.charge(Category.RDTSC, 100)
        account.charge(Category.RDTSC, 50, events=2)
        account.charge(Category.RAS, 10)
        assert account.cycles(Category.RDTSC) == 150
        assert account.events(Category.RDTSC) == 3
        assert account.total_overhead == 160
        assert account.by_category() == {Category.RDTSC: 150,
                                         Category.RAS: 10}

    def test_merge(self):
        first = CycleAccount()
        first.charge(Category.DEVICE, 5)
        second = CycleAccount()
        second.charge(Category.DEVICE, 7)
        first.merge(second)
        assert first.cycles(Category.DEVICE) == 12

    def test_breakdown_category_sets(self):
        assert Category.CHECKPOINT not in RECORDING_BREAKDOWN
        assert Category.CHECKPOINT in REPLAY_BREAKDOWN
        assert Category.DEVICE not in RECORDING_BREAKDOWN


class TestRunMetrics:
    def _metrics(self, cycles=1000, overhead=0):
        account = CycleAccount()
        if overhead:
            account.charge(Category.RDTSC, overhead)
        return RunMetrics(label="x", instructions=cycles,
                          guest_cycles=cycles, account=account,
                          log_bytes=500_000)

    def test_total_cycles(self):
        assert self._metrics(1000, 200).total_cycles == 1200

    def test_normalized_time(self):
        base = self._metrics(1000)
        run = self._metrics(1000, 270)
        assert normalized_time(run, base) == pytest.approx(1.27)

    def test_log_rate(self):
        metrics = self._metrics(DEFAULT_CONFIG.cycles_per_second)
        assert metrics.log_rate_mb_per_s(DEFAULT_CONFIG) == pytest.approx(0.5)

    def test_alarms_per_million(self):
        metrics = self._metrics(2_000_000)
        metrics.alarms = 4
        assert metrics.alarms_per_million() == pytest.approx(2.0)

    def test_breakdown_percentages(self):
        account = CycleAccount()
        account.charge(Category.RDTSC, 750)
        account.charge(Category.RAS, 250)
        breakdown = OverheadBreakdown.from_account(
            "x", account, RECORDING_BREAKDOWN,
        )
        assert breakdown.percent_of(Category.RDTSC) == pytest.approx(75.0)
        assert breakdown.dominant() is Category.RDTSC
        assert breakdown.percent_of(Category.NETWORK) == 0.0
