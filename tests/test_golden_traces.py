"""Golden-trace parity corpus: recorded sessions as a wire contract.

``tests/golden/`` holds tiny recorded sessions covering the pipeline's
load-bearing shapes — a clean run, the three attack classes, a
sentinel-dense recording, a durable run store — with ``expected.json``
pinning every replay-visible figure.  These tests are the regression
tripwire for the record/replay wire format and semantics:

* re-recording each golden's manifest under **both** execution backends
  must reproduce the committed log bytes exactly (SHA-256);
* replaying each golden under both backends must verify every digest and
  reach the End record;
* alarm verdicts must match the committed ones;
* ``repro diff`` between a fresh re-recording and the committed golden
  must report ``REPLAY PARITY: TRUE``.

If one of these fails after an intentional format change, regenerate
with ``PYTHONPATH=src python tests/golden/generate.py`` — and say so in
the commit, because every digest moving is a compatibility break.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.diffing import RunSource, diff_runs
from repro.replay import CheckpointingOptions, CheckpointingReplayer
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.rnr.records import AlarmRecord, EndRecord
from repro.rnr.session import SessionManifest, load_session, save_session

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
EXPECTED = json.loads((GOLDEN_DIR / "expected.json").read_text())

BACKENDS = ("interp", "trace")


def _manifest(expect: dict) -> SessionManifest:
    return SessionManifest(
        benchmark=expect["benchmark"],
        seed=expect["seed"],
        attack=expect["attack"],
        max_instructions=expect["max_instructions"],
    )


def _spec_for(expect: dict, backend: str):
    spec = _manifest(expect).build_spec()
    return dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, exec_backend=backend))


def _golden_log(expect: dict):
    source = RunSource.open(GOLDEN_DIR / expect["path"])
    return source.materialize()


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_golden_log_matches_committed_bytes(name):
    """The committed file decodes to exactly the pinned record stream."""
    expect = EXPECTED[name]
    log = _golden_log(expect)
    assert len(log) == expect["records"]
    assert hashlib.sha256(log.to_bytes()).hexdigest() == expect["log_sha256"]
    end = log.records()[-1]
    assert isinstance(end, EndRecord)
    assert end.digest == expect["final_digest"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_golden_rerecord_bit_identical(name, backend):
    """Re-recording the manifest reproduces the committed bytes, on both
    execution backends — the recording is a pure function of the spec."""
    expect = EXPECTED[name]
    spec = _spec_for(expect, backend)
    run = Recorder(spec, RecorderOptions(
        max_instructions=expect["max_instructions"],
        sentinel_records=expect["sentinel_records"],
    )).run()
    assert run.stop_reason == expect["stop_reason"]
    assert run.metrics.alarms == expect["alarms"]
    assert (hashlib.sha256(run.log.to_bytes()).hexdigest()
            == expect["log_sha256"])


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_golden_replays_verified(name, backend):
    """Every golden replays to its End record with all digests verified,
    under both execution backends."""
    expect = EXPECTED[name]
    log = _golden_log(expect)
    replayer = CheckpointingReplayer(
        _spec_for(expect, backend), log, CheckpointingOptions())
    result = replayer.run_to_end()
    assert result.replay.reached_end
    assert result.replay.digest_checked
    end = log.records()[-1]
    assert replayer.machine.cpu.icount == end.icount


@pytest.mark.parametrize("name", [n for n in sorted(EXPECTED)
                                  if EXPECTED[n]["verdicts"]])
def test_golden_verdicts(name):
    """Alarm resolution over the golden log matches the pinned verdicts
    (including the rop golden's confirmed hijacks)."""
    from repro.core.parallel import resolve_alarms_parallel

    expect = EXPECTED[name]
    log = _golden_log(expect)
    alarms = [r for r in log.records() if isinstance(r, AlarmRecord)]
    resolution = resolve_alarms_parallel(
        _spec_for(expect, "interp"), log, alarms,
        backend="thread", max_workers=2)
    assert [v.kind.value for v in resolution.verdicts] == expect["verdicts"]


def test_rop_golden_confirms_the_attack():
    """The corpus includes a true positive, not just benign alarms."""
    assert "rop_confirmed" in EXPECTED["rop"]["verdicts"]


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_golden_diff_parity_against_rerecording(name, tmp_path, capsys):
    """``repro diff`` between the committed golden and a fresh recording
    of the same manifest is the CI parity gate in miniature."""
    expect = EXPECTED[name]
    spec = _spec_for(expect, "interp")
    run = Recorder(spec, RecorderOptions(
        max_instructions=expect["max_instructions"],
        sentinel_records=expect["sentinel_records"],
    )).run()
    fresh = tmp_path / "fresh.session"
    save_session(fresh, _manifest(expect), run.log)
    code = cli_main(["diff", str(GOLDEN_DIR / expect["path"]), str(fresh)])
    out = capsys.readouterr().out
    assert out.strip().endswith("REPLAY PARITY: TRUE")
    assert code == 0


def test_golden_cross_workload_diff_is_manifest_mismatch():
    """Different goldens are different workloads, not divergent runs."""
    report = diff_runs(RunSource.open(GOLDEN_DIR / EXPECTED["clean"]["path"]),
                       RunSource.open(GOLDEN_DIR / EXPECTED["rop"]["path"]))
    assert report.verdict == "manifest-mismatch"
    assert not report.parity
    assert report.exit_code == 1


def test_store_golden_is_clean_under_fsck(capsys):
    """The durable-store golden passes ``repro fsck --json`` with exit 0."""
    path = GOLDEN_DIR / EXPECTED["store"]["path"]
    code = cli_main(["fsck", str(path), "--json"])
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    assert report["status"] == "clean"
    assert report["recording_complete"] is True
    assert report["records"] == EXPECTED["store"]["records"]


def test_expected_json_is_exhaustive():
    """Every committed golden artifact is covered by expected.json."""
    on_disk = {p.name for p in GOLDEN_DIR.iterdir()
               if p.suffix in (".session", ".store")}
    assert on_disk == {e["path"] for e in EXPECTED.values()}
