"""Tests for the chunked frame codec and the streaming log layer.

The streaming path must be indistinguishable from the batch path on the
wire: frame payloads concatenate to exactly ``InputLog.to_bytes()``, a
reader reassembles the identical record list, and corrupt or truncated
frames fail loudly with the frame's byte offset in the message.
"""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.exits import RopAlarmKind
from repro.errors import LogError
from repro.rnr.log import (
    InputLog,
    RecordingLogTee,
    StreamingLogReader,
    StreamingLogWriter,
)
from repro.rnr.records import (
    AlarmRecord,
    DiskDmaRecord,
    EndRecord,
    EvictRecord,
    InterruptRecord,
    MmioReadRecord,
    NetworkDmaRecord,
    PioInRecord,
    RdrandRecord,
    RdtscRecord,
    is_async_record,
)
from repro.rnr.serialize import (
    FRAME_MAGIC,
    decode_records,
    encode_frame,
    encode_records,
    parse_frame,
    parse_frame_header,
    serialize_record,
)
from repro.rnr.session import SessionManifest, load_session, save_session


def _record_strategy():
    small = st.integers(0, 2**32)
    word = st.integers(0, 2**64 - 1)
    return st.one_of(
        st.builds(RdtscRecord, value=word),
        st.builds(RdrandRecord, value=word),
        st.builds(PioInRecord, port=st.integers(0, 255), value=word),
        st.builds(MmioReadRecord, addr=small, value=word),
        st.builds(InterruptRecord, icount=small,
                  vector=st.integers(0, 31)),
        st.builds(DiskDmaRecord, icount=small,
                  block=st.integers(0, 4096), addr=small),
        st.builds(NetworkDmaRecord, icount=small, addr=small,
                  words=st.lists(word, max_size=8).map(tuple)),
        st.builds(EvictRecord, icount=small,
                  tid=st.integers(-1, 7), value=word),
        st.builds(AlarmRecord, icount=small,
                  kind=st.sampled_from(list(RopAlarmKind)),
                  pc=small,
                  predicted=st.one_of(st.none(), small),
                  actual=small,
                  tid=st.integers(-1, 7)),
    )


SAMPLE_RECORDS = [
    RdtscRecord(value=12345),
    PioInRecord(port=11, value=1),
    InterruptRecord(icount=40, vector=3),
    NetworkDmaRecord(icount=50, addr=0x6000, words=(1, 2, 3)),
    RdrandRecord(value=2**63),
    EvictRecord(icount=90, tid=2, value=0x1234),
    MmioReadRecord(addr=0x0F00_0000, value=42),
    AlarmRecord(icount=130, kind=RopAlarmKind.MISMATCH, pc=0x11F7,
                predicted=0x1100, actual=0x1162, tid=1),
    DiskDmaRecord(icount=170, block=17, addr=0x3000),
    RdtscRecord(value=99),
    EndRecord(icount=200, digest=0xDEADBEEF),
]


def _stream(records, frame_records):
    writer = StreamingLogWriter(frame_records)
    for record in records:
        writer.append(record)
    writer.finish()
    return writer, writer.take_frames()


class TestBatchCodec:
    def test_encode_records_matches_per_record_serialization(self):
        batch = encode_records(SAMPLE_RECORDS)
        assert batch == b"".join(
            serialize_record(record) for record in SAMPLE_RECORDS
        )

    def test_decode_records_round_trip(self):
        batch = encode_records(SAMPLE_RECORDS)
        assert decode_records(batch) == SAMPLE_RECORDS

    def test_decode_records_count_mismatch(self):
        batch = encode_records(SAMPLE_RECORDS)
        with pytest.raises(LogError, match="expected"):
            decode_records(batch, count=len(SAMPLE_RECORDS) + 1)


class TestFrameCodec:
    def test_frame_round_trip(self):
        payload = encode_records(SAMPLE_RECORDS)
        frame = encode_frame(payload, len(SAMPLE_RECORDS), 0, 200)
        header, records, end = parse_frame(frame)
        assert records == SAMPLE_RECORDS
        assert end == len(frame)
        assert header.record_count == len(SAMPLE_RECORDS)
        assert header.first_icount == 0
        assert header.last_icount == 200
        assert header.payload_length == len(payload)

    def test_bad_magic_names_offset(self):
        payload = encode_records(SAMPLE_RECORDS[:2])
        frame = bytearray(encode_frame(payload, 2, 0, 0))
        frame[0] = 0x01
        with pytest.raises(LogError, match="offset 0"):
            parse_frame_header(bytes(frame))

    def test_truncated_payload_names_offset(self):
        payload = encode_records(SAMPLE_RECORDS)
        frame = encode_frame(payload, len(SAMPLE_RECORDS), 0, 200)
        with pytest.raises(LogError, match="truncated frame at byte offset"):
            parse_frame(frame[:-3])

    def test_truncated_header_names_offset(self):
        with pytest.raises(LogError, match="offset"):
            parse_frame_header(bytes([FRAME_MAGIC, 0x80]))

    def test_corrupt_payload_names_offset(self):
        payload = bytearray(encode_records(SAMPLE_RECORDS[:3]))
        payload[0] = 0xEE  # not a record tag
        frame = encode_frame(payload, 3, 0, 0)
        with pytest.raises(LogError, match="corrupt frame at byte offset 0"):
            parse_frame(frame)

    def test_second_frame_failure_names_its_own_offset(self):
        first = encode_frame(encode_records(SAMPLE_RECORDS[:2]), 2, 0, 0)
        stream = first + b"\x00garbage"
        reader = StreamingLogReader()
        with pytest.raises(LogError, match=f"offset {len(first)}"):
            reader.feed_stream(stream)


class TestStreamingWriterReader:
    @pytest.mark.parametrize("frame_records", [1, 3, 7, 512])
    def test_round_trip_matches_batch_codec(self, frame_records):
        writer, frames = _stream(SAMPLE_RECORDS, frame_records)
        reader = StreamingLogReader()
        for frame in frames:
            reader.feed(frame)
        assert reader.records == SAMPLE_RECORDS
        log = InputLog()
        for record in SAMPLE_RECORDS:
            log.append(record)
        assert reader.to_log().to_bytes() == log.to_bytes()
        assert writer.records_written == len(SAMPLE_RECORDS)
        assert writer.payload_bytes == log.total_bytes
        assert writer.frames_emitted == len(frames)

    @pytest.mark.parametrize("frame_records", [1, 4, 512])
    def test_payloads_concatenate_to_flat_serialization(self, frame_records):
        _, frames = _stream(SAMPLE_RECORDS, frame_records)
        payloads = bytearray()
        for frame in frames:
            header, payload_start = parse_frame_header(frame)
            payloads += frame[payload_start:]
        assert bytes(payloads) == encode_records(SAMPLE_RECORDS)

    def test_header_icounts_carry_across_frames(self):
        _, frames = _stream(SAMPLE_RECORDS, 3)
        previous_last = 0
        count = 0
        for frame in frames:
            header, _, _ = parse_frame(frame)
            assert header.first_icount == previous_last
            assert header.last_icount >= header.first_icount
            previous_last = header.last_icount
            count += header.record_count
        assert count == len(SAMPLE_RECORDS)

    def test_append_after_finish_rejected(self):
        writer, _ = _stream(SAMPLE_RECORDS[:2], 8)
        with pytest.raises(LogError, match="finished"):
            writer.append(RdtscRecord(value=1))

    def test_finish_idempotent(self):
        writer, frames = _stream(SAMPLE_RECORDS, 4)
        writer.finish()
        assert writer.take_frames() == []
        assert writer.frames_emitted == len(frames)

    def test_feed_rejects_trailing_bytes(self):
        _, frames = _stream(SAMPLE_RECORDS, 512)
        reader = StreamingLogReader()
        with pytest.raises(LogError, match="trailing"):
            reader.feed(frames[0] + b"\x00")

    def test_latest_frame_before_matches_linear_scan(self):
        _, frames = _stream(SAMPLE_RECORDS, 2)
        reader = StreamingLogReader()
        for frame in frames:
            reader.feed(frame)
        for icount in range(0, 260, 13):
            expected = None
            for info in reader.frames:
                if info.first_icount <= icount:
                    expected = info
            assert reader.latest_frame_before(icount) is expected

    @given(records=st.lists(_record_strategy(), max_size=40),
           frame_records=st.integers(1, 64))
    def test_property_round_trip(self, records, frame_records):
        _, frames = _stream(records, frame_records)
        reader = StreamingLogReader()
        for frame in frames:
            reader.feed(frame)
        assert reader.records == records
        assert reader.to_log().to_bytes() == encode_records(records)
        icount = 0
        for info in reader.frames:
            frame_records_slice = records[
                info.record_offset:info.record_offset + info.record_count
            ]
            assert info.first_icount == icount
            for record in frame_records_slice:
                if is_async_record(record):
                    icount = record.icount
            assert info.last_icount == icount


class TestRecordingLogTee:
    def test_tee_matches_plain_log(self):
        plain = InputLog()
        tee = RecordingLogTee(StreamingLogWriter(3))
        for record in SAMPLE_RECORDS:
            assert tee.append(record) == plain.append(record)
        tee.finish()
        assert tee.records() == plain.records()
        assert tee.total_bytes == plain.total_bytes
        assert tee.to_bytes() == plain.to_bytes()
        frames = tee.writer.take_frames()
        reader = StreamingLogReader()
        for frame in frames:
            reader.feed(frame)
        assert reader.records == list(SAMPLE_RECORDS)


class TestFramedSession:
    @pytest.fixture
    def recorded(self):
        from repro.rnr.recorder import Recorder, RecorderOptions

        manifest = SessionManifest(benchmark="fileio", seed=7,
                                   max_instructions=60_000)
        run = Recorder(manifest.build_spec(),
                       RecorderOptions(max_instructions=60_000)).run()
        return manifest, run.log

    def test_framed_round_trip(self, recorded, tmp_path):
        manifest, log = recorded
        path = tmp_path / "session.rnr"
        save_session(path, manifest, log, framed=True, frame_records=8)
        loaded_manifest, loaded_log = load_session(path)
        assert loaded_manifest == manifest
        assert loaded_log.to_bytes() == log.to_bytes()

    def test_flat_round_trip_unchanged(self, recorded, tmp_path):
        manifest, log = recorded
        path = tmp_path / "session.rnr"
        save_session(path, manifest, log)
        loaded_manifest, loaded_log = load_session(path)
        assert loaded_manifest == manifest
        assert loaded_log.to_bytes() == log.to_bytes()

    def test_framed_body_is_smaller_than_flat_plus_percent(self, recorded,
                                                           tmp_path):
        # Framing overhead is a handful of header bytes per frame.
        manifest, log = recorded
        flat = tmp_path / "flat.rnr"
        framed = tmp_path / "framed.rnr"
        save_session(flat, manifest, log)
        save_session(framed, manifest, log, framed=True, frame_records=512)
        overhead = framed.stat().st_size - flat.stat().st_size
        assert 0 < overhead <= 16 * (len(log) // 512 + 1)
