"""Tests for the checkpoint store and the checkpointing replayer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.state import CpuState
from repro.errors import CheckpointError
from repro.replay import (
    CheckpointingOptions,
    CheckpointingReplayer,
    CheckpointStore,
    DeterministicReplayer,
)

from tests.conftest import cached_attack_recording, cached_recording


def dummy_cpu_state(pc=0):
    return CpuState(regs=tuple(range(16)), pc=pc, zero=False, negative=False,
                    user=False, int_enabled=True, icount=pc, halted=False)


def make_store_with(pages_list):
    store = CheckpointStore()
    for index, pages in enumerate(pages_list):
        store.add(
            icount=100 * (index + 1),
            cycles=1000 * (index + 1),
            cpu_state=dummy_cpu_state(pc=index),
            pages=pages,
            disk_blocks={},
            backras={},
            current_tid=0,
            log_position=index,
        )
    return store


class TestCheckpointStore:
    def test_chain_reconstruction_overlays_newest_first(self):
        store = make_store_with([
            {1: (10,), 2: (20,)},
            {2: (21,)},
            {3: (30,)},
        ])
        latest = store.latest()
        overlay = store.reconstruct_pages(latest)
        assert overlay == {1: (10,), 2: (21,), 3: (30,)}

    def test_reconstruct_intermediate(self):
        store = make_store_with([{1: (10,)}, {1: (11,)}, {1: (12,)}])
        middle = store.all()[1]
        assert store.reconstruct_pages(middle) == {1: (11,)}

    def test_latest_before(self):
        store = make_store_with([{}, {}, {}])
        assert store.latest_before(150).icount == 100
        assert store.latest_before(5000).icount == 300
        assert store.latest_before(50) is None

    def test_predecessor_chain(self):
        store = make_store_with([{}, {}])
        latest = store.latest()
        previous = store.predecessor(latest)
        assert previous.icount == 100
        assert store.predecessor(previous) is None

    def test_recycling_merges_pages_forward(self):
        store = make_store_with([
            {1: (10,), 2: (20,)},
            {2: (21,)},
            {3: (30,)},
        ])
        store.recycle_older_than(cycles=1500, keep_at_least=1)
        assert len(store) == 2
        assert store.recycled == 1
        latest = store.latest()
        overlay = store.reconstruct_pages(latest)
        # Page 1 survived the recycling by moving into its successor.
        assert overlay == {1: (10,), 2: (21,), 3: (30,)}

    def test_keep_at_least_floor(self):
        store = make_store_with([{}, {}, {}])
        store.recycle_older_than(cycles=10**9, keep_at_least=2)
        assert len(store) == 2

    def test_reconstruct_foreign_checkpoint_rejected(self):
        store_a = make_store_with([{}])
        store_b = make_store_with([{}])
        foreign = store_b.latest()
        with pytest.raises(CheckpointError):
            store_a.reconstruct_pages(foreign)

    def test_storage_accounting(self):
        store = make_store_with([{1: (1, 2, 3)}, {2: (4,)}])
        assert store.storage_words == 4

    @given(
        page_sets=st.lists(
            st.dictionaries(st.integers(0, 5),
                            st.tuples(st.integers(0, 99)), max_size=4),
            min_size=1, max_size=8,
        )
    )
    def test_reconstruction_equals_sequential_overlay(self, page_sets):
        """Chain reconstruction must equal replaying the overlay forward."""
        store = make_store_with(page_sets)
        expected: dict = {}
        for pages in page_sets:
            expected.update(pages)
        assert store.reconstruct_pages(store.latest()) == expected

    @given(
        page_sets=st.lists(
            st.dictionaries(st.integers(0, 5),
                            st.tuples(st.integers(0, 99)), max_size=4),
            min_size=3, max_size=8,
        ),
        drop=st.integers(1, 3),
    )
    def test_recycling_preserves_latest_reconstruction(self, page_sets, drop):
        store = make_store_with(page_sets)
        before = store.reconstruct_pages(store.latest())
        for _ in range(min(drop, len(store) - 1)):
            store._drop_oldest()
        after = store.reconstruct_pages(store.latest())
        assert after == before


class TestCheckpointingReplayer:
    def test_cr_reaches_end_with_digest(self):
        spec, run = cached_recording("mysql")
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions(period_s=1.0))
        result = cr.run_to_end()
        assert result.replay.reached_end
        assert result.replay.digest_checked

    def test_checkpoints_are_periodic(self):
        spec, run = cached_recording("mysql")
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions(period_s=0.5))
        result = cr.run_to_end()
        cycles = [cp.cycles for cp in result.store.all()]
        assert len(cycles) >= 2
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        period = spec.config.cycles(0.5)
        assert all(gap >= period for gap in gaps)

    def test_shorter_period_means_more_checkpoints(self):
        spec, run = cached_recording("mysql")
        counts = {}
        for period in (2.0, 0.5):
            cr = CheckpointingReplayer(spec, run.log,
                                       CheckpointingOptions(period_s=period))
            counts[period] = len(cr.run_to_end().store)
        assert counts[0.5] > counts[2.0]

    def test_no_checkpointing_mode(self):
        spec, run = cached_recording("mysql")
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions(period_s=None))
        result = cr.run_to_end()
        assert len(result.store) == 0
        assert result.replay.reached_end

    def test_underflow_alarms_partitioned_by_evict_matching(self):
        """Every underflow alarm is either dismissed against its matching
        evict record (benign deep nesting) or forwarded to an AR — and the
        filter is sound: attack-induced underflows have no matching evict
        and are never swallowed."""
        spec, chain, run = cached_attack_recording()
        cr = CheckpointingReplayer(spec, run.log)
        result = cr.run_to_end()
        underflows_in_log = sum(
            1 for record in run.log.records()
            if getattr(record, "kind", None) is not None
            and getattr(record.kind, "value", "") == "underflow"
        )
        pending_underflows = sum(
            1 for a in result.pending_alarms if a.kind.value == "underflow"
        )
        assert (result.dismissed_underflows + pending_underflows
                == underflows_in_log)
        # The attack run must leave at least one alarm for the ARs.
        assert result.pending_alarms

    def test_retention_recycles_old_checkpoints(self):
        spec, run = cached_recording("mysql")
        keep_all = CheckpointingReplayer(
            spec, run.log, CheckpointingOptions(period_s=0.3),
        ).run_to_end()
        windowed = CheckpointingReplayer(
            spec, run.log,
            CheckpointingOptions(period_s=0.3, retention_s=0.7,
                                 keep_at_least=2),
        ).run_to_end()
        assert len(windowed.store) < len(keep_all.store)
        assert windowed.store.recycled > 0

    def test_checkpoint_restore_equivalence(self):
        """DESIGN.md invariant 4: resuming from any checkpoint and replaying
        the tail reaches the same final state as a straight replay."""
        spec, run = cached_recording("mysql")
        cr = CheckpointingReplayer(spec, run.log,
                                   CheckpointingOptions(period_s=0.8))
        result = cr.run_to_end()
        assert len(result.store) >= 1
        for checkpoint in result.store.all():
            resumed = DeterministicReplayer(spec, run.log.cursor())
            resumed.restore_checkpoint(checkpoint, result.store)
            outcome = resumed.run()
            assert outcome.reached_end
            assert outcome.digest_checked

    def test_checkpoint_log_positions_are_monotonic(self):
        spec, run = cached_recording("apache")
        result = CheckpointingReplayer(spec, run.log).run_to_end()
        positions = [cp.log_position for cp in result.store.all()]
        assert positions == sorted(positions)

    def test_backras_included_in_checkpoints(self):
        spec, run = cached_recording("mysql")
        result = CheckpointingReplayer(spec, run.log).run_to_end()
        assert any(cp.backras for cp in result.store.all())
