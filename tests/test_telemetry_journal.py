"""Durable telemetry: journal recovery, post-hoc stats, SLO gates, top.

The journal inherits the run store's durability discipline, so the same
adversarial suite applies: every entry is CRC'd, a torn tail (kill -9
mid-write) is cut at the last whole entry, a sequence gap drops the rest,
and reconstruction trusts only what validates.  On top of that sit the
consumer contracts: ``repro stats DIR`` rebuilds the tables from disk
alone, ``stats --compare`` exits nonzero on an SLO breach, and ``repro
top`` computes rates strictly within one attempt so a healed session
never mixes icounts with its predecessor.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.cli import main as cli_main
from repro.core.parallel import record_and_replay_pipelined
from repro.obs import (
    DEFAULT_SLO_RULES,
    TELEMETRY_JOURNAL_NAME,
    SessionView,
    TelemetryJournalWriter,
    TopBoard,
    compare_kpis,
    compare_stores,
    kpis,
    load_run_telemetry,
    parse_slo,
    scan_telemetry_journal,
    sparkline,
)
from repro.replay.checkpointing import CheckpointingOptions
from repro.rnr.recorder import RecorderOptions
from repro.rnr.session import SessionManifest
from repro.store import RunStoreWriter, recover_run
from repro.store.recover import fsck_report

BUDGET = 40_000
FRAME_RECORDS = 8


def _manifest() -> SessionManifest:
    return SessionManifest(benchmark="apache", seed=2018, attack="rop",
                           max_instructions=BUDGET)


def _durable_run(path, *, attempt=0, resume=None):
    manifest = _manifest()
    store = RunStoreWriter(str(path), manifest, fsync="never",
                           frame_records=FRAME_RECORDS, attempt=attempt,
                           resume=resume)
    return record_and_replay_pipelined(
        manifest.build_spec(),
        RecorderOptions(max_instructions=BUDGET),
        CheckpointingOptions(period_s=0.2),
        backend="thread", frame_records=FRAME_RECORDS,
        run_store=store, resume=resume,
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "run"
    run = _durable_run(path)
    return path, run


def _rewrite(path, lines):
    path.write_bytes(b"\n".join(lines) + b"\n" if lines else b"")


def _entry_lines(path):
    return path.read_bytes().splitlines()


def _reencode(body):
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"),
                      default=str).encode()
    return json.dumps({"crc": zlib.crc32(blob), "body": body},
                      sort_keys=True, separators=(",", ":")).encode()


# ----------------------------------------------------------------------
# writer / scanner roundtrip
# ----------------------------------------------------------------------


class TestJournalRoundtrip:
    def test_durable_run_writes_a_journal(self, store):
        path, _run = store
        journal = path / TELEMETRY_JOURNAL_NAME
        assert journal.exists()
        scan = scan_telemetry_journal(str(journal))
        assert not scan.notes
        assert scan.beats()
        kinds = {entry["kind"] for entry in scan.entries}
        assert kinds == {"beat", "snapshot"}

    def test_reconstruction_matches_the_live_run(self, store):
        path, run = store
        snapshot, scan = load_run_telemetry(str(path))
        assert not scan.notes
        assert (snapshot.metrics.counter_value("record.instructions")
                == run.recording.metrics.instructions == BUDGET)
        assert (snapshot.metrics.counter_value("record.log_bytes")
                == run.recording.metrics.log_bytes)

    def test_finish_appends_a_terminal_beat(self, store):
        path, _run = store
        scan = scan_telemetry_journal(str(path / TELEMETRY_JOURNAL_NAME))
        last = scan.beats()[-1]
        assert last["state"] == "done"
        assert last["icount"] == BUDGET

    def test_fsck_counts_the_telemetry_entries(self, store):
        path, _run = store
        resume = recover_run(path)
        scan = scan_telemetry_journal(str(path / TELEMETRY_JOURNAL_NAME))
        assert resume.telemetry_entries == len(scan.entries) > 0
        report = fsck_report(path)
        assert report.status == "clean"
        assert report.to_json()["telemetry_entries"] == len(scan.entries)


# ----------------------------------------------------------------------
# adversarial recovery
# ----------------------------------------------------------------------


class TestRecovery:
    def test_torn_tail_is_cut_and_reported(self, store, tmp_path):
        path, _run = store
        journal = tmp_path / TELEMETRY_JOURNAL_NAME
        data = (path / TELEMETRY_JOURNAL_NAME).read_bytes()
        journal.write_bytes(data + b'{"crc": 1, "body": {"kind"')
        scan = scan_telemetry_journal(str(journal))
        assert len(scan.entries) == len(
            scan_telemetry_journal(
                str(path / TELEMETRY_JOURNAL_NAME)).entries)
        assert any("torn tail" in note for note in scan.notes)
        assert scan.reconstruct() is not None

    def test_crc_mismatch_cuts_the_journal_there(self, store, tmp_path):
        path, _run = store
        lines = _entry_lines(path / TELEMETRY_JOURNAL_NAME)
        victim = json.loads(lines[1])
        victim["body"]["icount"] = 999_999_999  # tamper without re-CRC
        lines[1] = json.dumps(victim, sort_keys=True,
                              separators=(",", ":")).encode()
        journal = tmp_path / TELEMETRY_JOURNAL_NAME
        _rewrite(journal, lines)
        scan = scan_telemetry_journal(str(journal))
        assert len(scan.entries) == 1
        assert any("CRC mismatch" in note for note in scan.notes)

    def test_sequence_gap_drops_the_rest(self, store, tmp_path):
        path, _run = store
        lines = _entry_lines(path / TELEMETRY_JOURNAL_NAME)
        assert len(lines) >= 3
        del lines[1]  # a vanished middle entry is worse than a torn tail
        journal = tmp_path / TELEMETRY_JOURNAL_NAME
        _rewrite(journal, lines)
        scan = scan_telemetry_journal(str(journal))
        assert len(scan.entries) == 1
        assert any("sequence jump" in note for note in scan.notes)

    def test_mid_run_kill_still_reconstructs(self, store, tmp_path):
        # Simulate kill -9 mid-write: keep a prefix of whole entries
        # plus half of the next line.  Reconstruction returns the last
        # journaled cumulative snapshot, not nothing.
        path, _run = store
        data = (path / TELEMETRY_JOURNAL_NAME).read_bytes()
        lines = data.splitlines(keepends=True)
        snapshot_positions = [
            index for index, line in enumerate(lines)
            if json.loads(line)["body"]["kind"] == "snapshot"
        ]
        cut = snapshot_positions[-1]  # keep everything before the last one
        torn = b"".join(lines[:cut]) + lines[cut][:len(lines[cut]) // 2]
        journal = tmp_path / TELEMETRY_JOURNAL_NAME
        journal.write_bytes(torn)
        scan = scan_telemetry_journal(str(journal))
        assert scan.notes
        rebuilt = scan.reconstruct()
        assert rebuilt is not None

    def test_missing_journal_is_a_note_not_an_error(self, tmp_path):
        scan = scan_telemetry_journal(str(tmp_path / "absent.jsonl"))
        assert scan.entries == ()
        assert scan.reconstruct() is None
        assert any("missing" in note for note in scan.notes)

    def test_resumed_writer_truncates_and_continues_seq(self, tmp_path):
        journal = tmp_path / TELEMETRY_JOURNAL_NAME
        writer = TelemetryJournalWriter(str(journal), fsync="never")
        writer.append_beat("record", "record", 100)
        writer.append_beat("record", "record", 200)
        writer.close()
        with open(journal, "ab") as handle:
            handle.write(b'{"torn')
        resumed = TelemetryJournalWriter(str(journal), fsync="never",
                                         attempt=1, resume=True)
        resumed.append_beat("record", "record", 300)
        resumed.close()
        scan = scan_telemetry_journal(str(journal))
        assert not scan.notes
        assert [entry["seq"] for entry in scan.entries] == [0, 1, 2]
        assert [entry["attempt"] for entry in scan.entries] == [0, 0, 1]


# ----------------------------------------------------------------------
# aggregation and SLO gates
# ----------------------------------------------------------------------


class TestSlo:
    def test_self_compare_is_breach_free(self, store):
        path, _run = store
        report = compare_stores(str(path), str(path))
        assert report.exit_code == 0
        assert not report.breaches
        assert any(delta.name.endswith(".instr_s")
                   for delta in report.deltas)

    def test_seeded_regression_breaches_the_default_slo(self, store):
        path, _run = store
        base = kpis(load_run_telemetry(str(path))[0])
        slowed = dict(base)
        for name in slowed:
            if name.endswith(".instr_s"):
                slowed[name] *= 0.5
        report = compare_kpis(base, slowed, DEFAULT_SLO_RULES)
        assert report.exit_code == 1
        assert all("regressed" in breach
                   for delta in report.breaches
                   for breach in delta.breaches)

    def test_missing_kpi_is_a_breach(self):
        report = compare_kpis({"cr.replay.instr_s": 1000.0}, {},
                              DEFAULT_SLO_RULES)
        assert report.exit_code == 1
        assert "kpi missing from candidate" in report.breaches[0].breaches

    def test_absolute_bounds_apply_without_a_baseline_move(self):
        rules = parse_slo({"kpis": {"record.log_bytes": {"max": 100}}})
        report = compare_kpis({"record.log_bytes": 50.0},
                              {"record.log_bytes": 150.0}, rules)
        assert report.exit_code == 1

    def test_unknown_slo_bound_is_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO bound"):
            parse_slo({"kpis": {"x": {"max_regresion_pct": 5}}})


# ----------------------------------------------------------------------
# CLI: stats DIR, --compare, top
# ----------------------------------------------------------------------


class TestCli:
    def test_stats_reconstructs_post_hoc(self, store, capsys):
        path, _run = store
        assert cli_main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "reconstructed from 1 durable telemetry journal" in out
        assert "record.instructions" in out

    def test_stats_compare_self_exits_zero(self, store, capsys):
        path, _run = store
        assert cli_main(["stats", "--compare", str(path), str(path)]) == 0
        assert "SLO: ok" in capsys.readouterr().out

    def test_stats_compare_seeded_regression_exits_one(
            self, store, tmp_path, capsys):
        path, _run = store
        slow = tmp_path / "slow"
        slow.mkdir()
        lines = []
        for line in _entry_lines(path / TELEMETRY_JOURNAL_NAME):
            body = json.loads(line)["body"]
            if body["kind"] == "snapshot":
                for span in body["spans"]:
                    begin, end = span["wall_ns"]
                    span["wall_ns"] = [begin, begin + (end - begin) * 2]
            lines.append(_reencode(body))
        _rewrite(slow / TELEMETRY_JOURNAL_NAME, lines)
        assert cli_main(["stats", "--compare", str(path), str(slow)]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_stats_compare_missing_journals_exits_two(self, tmp_path,
                                                      capsys):
        empty = tmp_path / "void"
        empty.mkdir()
        assert cli_main(["stats", "--compare", str(empty), str(empty)]) == 2
        assert "no reconstructable" in capsys.readouterr().err

    def test_stats_rejects_a_nonsense_target(self, capsys):
        assert cli_main(["stats", "no-such-benchmark-or-dir"]) == 2
        assert "neither a benchmark" in capsys.readouterr().err

    def test_top_once_renders_the_finished_session(self, store, capsys):
        path, _run = store
        assert cli_main(["top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "run:done" in out
        assert "1 finished" in out
        assert "WEDGED?" not in out


# ----------------------------------------------------------------------
# repro top: attempt separation and staleness
# ----------------------------------------------------------------------


def _beat(seq, attempt, icount, wall, actor="record", state="record"):
    body = {"kind": "beat", "actor": actor, "state": state,
            "icount": icount, "frames": 0, "wall": wall,
            "attempt": attempt, "seq": seq}
    return _reencode(body)


class TestTopBoard:
    def test_healed_session_never_mixes_attempts(self, tmp_path):
        # Attempt 0 died at icount 90k; the healed attempt 1 restarts
        # low.  A cross-attempt rate would be hugely negative (or wrap);
        # the view must compute rates within attempt 1 only.
        session = tmp_path / "session-000"
        session.mkdir()
        lines = [
            _beat(0, 0, 80_000, 1000.0),
            _beat(1, 0, 90_000, 1001.0),
            _beat(0, 1, 1_000, 1002.0),
            _beat(1, 1, 2_000, 1003.0),
            _beat(2, 1, 3_000, 1004.0),
        ]
        _rewrite(session / TELEMETRY_JOURNAL_NAME, lines)
        view = SessionView.from_journal("session-000", str(session))
        assert view.attempt == 1
        assert view.heals == 1
        assert view.icount == 3_000
        assert view.rates == (1_000.0, 1_000.0)
        assert all(rate > 0 for rate in view.rates)

    def test_stale_is_strictly_after_the_deadline(self, tmp_path):
        # At *exactly* heal_deadline_s the session is not yet wedged —
        # the supervisor uses strict >, and a board that flags at >= would
        # flap against it.
        session = tmp_path / "s"
        session.mkdir()
        _rewrite(session / TELEMETRY_JOURNAL_NAME,
                 [_beat(0, 0, 1_000, 1000.0)])
        view = SessionView.from_journal("s", str(session))
        deadline = 5.0
        assert not view.is_stale(now=1000.0 + deadline,
                                 stale_after_s=deadline)
        assert view.is_stale(now=1000.0 + deadline + 1e-3,
                             stale_after_s=deadline)

    def test_terminal_states_never_go_stale(self, tmp_path):
        session = tmp_path / "s"
        session.mkdir()
        _rewrite(session / TELEMETRY_JOURNAL_NAME,
                 [_beat(0, 0, 1_000, 1000.0, actor="run", state="done")])
        view = SessionView.from_journal("s", str(session))
        assert not view.is_stale(now=1000.0 + 3600.0)

    def test_board_flags_wedged_and_healed(self, tmp_path):
        session = tmp_path / "session-000"
        session.mkdir()
        _rewrite(session / TELEMETRY_JOURNAL_NAME, [
            _beat(0, 0, 50_000, 1000.0),
            _beat(0, 1, 1_000, 1002.0),
            _beat(1, 1, 2_000, 1003.0),
        ])
        board = TopBoard(str(tmp_path))
        text = board.render(now=1003.0 + 60.0)
        assert "WEDGED?" in text
        assert "healed x1" in text

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == "▁▁"
        line = sparkline([1, 2, 4, 8], width=4)
        assert len(line) == 4
        assert line[-1] == "█"
