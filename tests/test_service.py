"""Replay-as-a-service tests: durable queue, daemon, crash matrix.

Three layers, mirroring the tentpole's crash contract:

* **Unit** — the wire protocol (CRC envelope, endpoint parsing), the
  durable job queue (nonce dedup, backpressure, priority order, retry
  backoff, quarantine, torn-tail recovery), and the service-scoped
  message faults (drop / duplicate / garble).
* **In-process integration** — a real :class:`ServiceDaemon` on a
  background thread with real worker processes: submit/drain parity
  against the equivalent one-shot ``run_fleet``, AR-over-CR preemption,
  backpressure over the socket, message-fault handling end to end, and
  poison-job quarantine.
* **Subprocess crash matrix** — ``repro serve`` as a child process,
  SIGKILL'd at every queue state transition (all-queued, mid-running,
  after-first-done) plus the accept-window crash, then resumed with
  ``repro serve --once``: no accepted job lost, no job executed twice,
  and per-session results bit-identical to the one-shot fleet.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.core.fleet import FleetSession, run_fleet
from repro.errors import ProtocolError, QueueFullError, ServiceError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.service import (
    ServiceClient,
    ServiceDaemon,
    decode_message,
    default_endpoint,
    encode_message,
    parse_endpoint,
)
from repro.store.jobqueue import (
    JOB_QUEUE_NAME,
    PRIORITY_AR,
    PRIORITY_CR,
    JobQueue,
    load_job_queue_state,
    scan_job_queue,
)

BUDGET = 120_000
PERIOD = 0.2

#: The mixed batch every parity test submits: clean CR catch-up, an
#: alarm-bearing attack session, and a second clean session on another
#: benchmark/seed.  Index i becomes job-00000i.
SPECS = (
    {"benchmark": "fileio", "seed": 2018, "attack": None,
     "max_instructions": BUDGET, "period_s": PERIOD},
    {"benchmark": "mysql", "seed": 2018, "attack": "rop",
     "max_instructions": BUDGET, "period_s": PERIOD},
    {"benchmark": "apache", "seed": 7, "attack": None,
     "max_instructions": BUDGET, "period_s": PERIOD},
)

_SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


def _sessions():
    return [FleetSession(benchmark=spec["benchmark"], seed=spec["seed"],
                         attack=spec["attack"],
                         max_instructions=spec["max_instructions"],
                         period_s=spec["period_s"])
            for spec in SPECS]


@pytest.fixture(scope="module")
def oneshot():
    """One-shot ``run_fleet`` of SPECS — the bit-identical baseline."""
    fleet = run_fleet(_sessions(), max_workers=2)
    assert all(result.ok for result in fleet.results)
    return fleet.results


def _events(store) -> list[dict]:
    return list(scan_job_queue(os.path.join(str(store),
                                            JOB_QUEUE_NAME)).events)


def _wait_until(predicate, timeout_s: float = 60.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    pytest.fail(f"timed out after {timeout_s}s waiting for {what}")


def _assert_parity(store, oneshot, indices=None):
    """Every serviced job's result is bit-identical to the one-shot run."""
    state = load_job_queue_state(str(store))
    jobs = {job.index: job for job in state.jobs}
    for index in (range(len(SPECS)) if indices is None else indices):
        job = jobs[index]
        assert job.state == "done", (job.job_id, job.state, job.error)
        expected = oneshot[index]
        assert job.result["digest"] == expected.session_digest, job.job_id
        assert job.result["verdicts"] == list(expected.verdicts), job.job_id
        assert job.result["log_bytes"] == expected.log_bytes, job.job_id
    # Terminality: no job was completed twice.
    done_counts: dict[str, int] = {}
    for event in _events(store):
        if event.get("kind") == "done":
            done_counts[event["job"]] = done_counts.get(event["job"], 0) + 1
    assert all(count == 1 for count in done_counts.values()), done_counts


# ----------------------------------------------------------------------
# protocol units
# ----------------------------------------------------------------------


def test_message_roundtrip():
    body = {"op": "submit", "spec": {"benchmark": "fileio", "seed": 7},
            "nonce": "abc"}
    line = encode_message(body)
    assert line.endswith(b"\n")
    assert decode_message(line[:-1]) == body


def test_decode_rejects_flipped_byte():
    line = encode_message({"op": "ping"})[:-1]
    mutated = bytearray(line)
    mutated[-3] ^= 0x40
    with pytest.raises(ProtocolError):
        decode_message(bytes(mutated))


def test_decode_rejects_non_object_body():
    with pytest.raises(ProtocolError):
        decode_message(json.dumps({"crc": 0, "body": 3}).encode())
    with pytest.raises(ProtocolError):
        decode_message(b"not json at all")


def test_parse_endpoint():
    assert parse_endpoint("127.0.0.1:8123") == ("tcp", "127.0.0.1", 8123)
    assert parse_endpoint(":0") == ("tcp", "127.0.0.1", 0)
    assert parse_endpoint("/tmp/x.sock") == ("unix", "/tmp/x.sock")
    # A colon inside a path stays a path; a non-numeric port too.
    assert parse_endpoint("dir:with/colon.sock")[0] == "unix"
    assert parse_endpoint("localhost:http")[0] == "unix"


# ----------------------------------------------------------------------
# message-fault units (satellite: FaultPlan service scope)
# ----------------------------------------------------------------------


def test_message_fault_drop_duplicate_garble():
    line = encode_message({"op": "ping"})[:-1]
    plan = FaultPlan([
        FaultSpec(kind=FaultKind.DROP_MESSAGE, target=0),
        FaultSpec(kind=FaultKind.DUPLICATE_MESSAGE, target=1),
        FaultSpec(kind=FaultKind.GARBLE_MESSAGE, target=2),
    ])
    assert plan.apply_to_message(0, line) == []
    assert plan.apply_to_message(1, line) == [line, line]
    garbled = plan.apply_to_message(2, line)
    assert len(garbled) == 1 and garbled[0] != line
    with pytest.raises(ProtocolError):
        decode_message(garbled[0])
    # Unplanned messages pass through untouched.
    assert plan.apply_to_message(3, line) == [line]


def test_garble_is_deterministic_and_never_mints_newlines():
    line = encode_message({"op": "submit", "spec": {"benchmark": "make"},
                           "nonce": "x" * 64})[:-1]
    plan = FaultPlan([FaultSpec(kind=FaultKind.GARBLE_MESSAGE, target=5,
                                flips=32)], seed=7)
    first = plan.apply_to_message(5, line)
    second = plan.apply_to_message(5, line)
    assert first == second
    assert b"\n" not in first[0]


def test_message_faults_compose_duplicate_then_garble():
    line = encode_message({"op": "ping"})[:-1]
    plan = FaultPlan([
        FaultSpec(kind=FaultKind.DUPLICATE_MESSAGE, target=0),
        FaultSpec(kind=FaultKind.GARBLE_MESSAGE, target=0),
    ])
    variants = plan.apply_to_message(0, line)
    assert len(variants) == 2
    assert all(copy != line for copy in variants)


# ----------------------------------------------------------------------
# durable queue units
# ----------------------------------------------------------------------


def _queue(tmp_path, **kwargs) -> JobQueue:
    return JobQueue(str(tmp_path), **kwargs)


def test_submit_defaults_and_priority_classes(tmp_path):
    queue = _queue(tmp_path)
    clean, accepted = queue.submit({"benchmark": "fileio"}, nonce="n-clean")
    assert accepted
    assert (clean.seed, clean.max_instructions, clean.period_s) == \
        (2018, 200_000, 1.0)
    assert clean.priority == PRIORITY_CR
    attack, _ = queue.submit({"benchmark": "mysql", "attack": "rop"},
                             nonce="n-attack")
    assert attack.priority == PRIORITY_AR
    forced, _ = queue.submit({"benchmark": "make", "attack": "dos"},
                             nonce="n-forced", priority=PRIORITY_CR)
    assert forced.priority == PRIORITY_CR
    queue.close()


def test_submit_nonce_dedup_is_idempotent(tmp_path):
    queue = _queue(tmp_path)
    first, accepted = queue.submit({"benchmark": "fileio"}, nonce="same")
    again, accepted_again = queue.submit({"benchmark": "fileio"},
                                         nonce="same")
    assert accepted and not accepted_again
    assert again is first
    assert len([e for e in _events(tmp_path)
                if e["kind"] == "submit"]) == 1
    queue.close()


def test_submit_backpressure_raises_typed_error(tmp_path):
    queue = _queue(tmp_path, limit=2)
    queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.submit({"benchmark": "fileio"}, nonce="b")
    with pytest.raises(QueueFullError) as excinfo:
        queue.submit({"benchmark": "fileio"}, nonce="c")
    assert excinfo.value.reason == "queue-full"
    assert (excinfo.value.queued, excinfo.value.limit) == (2, 2)
    queue.close()


def test_next_runnable_orders_by_class_then_fifo(tmp_path):
    queue = _queue(tmp_path)
    clean_first, _ = queue.submit({"benchmark": "fileio"}, nonce="a")
    clean_second, _ = queue.submit({"benchmark": "apache"}, nonce="b")
    attack, _ = queue.submit({"benchmark": "mysql", "attack": "rop"},
                             nonce="c")
    # The alarm-bearing job outranks both earlier clean submissions.
    assert queue.next_runnable() is attack
    queue.mark_start(attack)
    assert queue.next_runnable() is clean_first
    queue.mark_start(clean_first)
    assert queue.next_runnable() is clean_second
    queue.close()


def test_retry_backoff_gates_next_runnable(tmp_path):
    queue = _queue(tmp_path)
    job, _ = queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.mark_start(job)
    quarantined = queue.mark_fail(job, "boom", max_failures=3,
                                  backoff_s=30.0)
    assert not quarantined and job.state == "queued" and job.resume
    now = time.monotonic()
    assert queue.next_runnable(now) is None
    assert queue.next_runnable(now + 120.0) is job
    queue.close()


def test_poison_job_quarantines_after_budget(tmp_path):
    queue = _queue(tmp_path)
    job, _ = queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.mark_start(job)
    assert not queue.mark_fail(job, "first", max_failures=1)
    queue.mark_start(job)
    assert queue.mark_fail(job, "second", max_failures=1)
    assert job.state == "quarantined" and job.failures == 2
    assert queue.next_runnable() is None
    kinds = [event["kind"] for event in _events(tmp_path)]
    assert kinds.count("fail") == 1 and kinds.count("quarantine") == 1
    queue.close()


def test_preemption_charges_no_failure(tmp_path):
    queue = _queue(tmp_path)
    job, _ = queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.mark_start(job)
    queue.mark_preempt(job)
    assert (job.state, job.resume, job.failures) == ("queued", True, 0)
    queue.close()


def test_reopen_replays_events_and_requeues_in_flight(tmp_path):
    queue = _queue(tmp_path)
    in_flight, _ = queue.submit({"benchmark": "fileio"}, nonce="a")
    finished, _ = queue.submit({"benchmark": "mysql", "attack": "rop"},
                               nonce="b")
    untouched, _ = queue.submit({"benchmark": "apache"}, nonce="c")
    queue.mark_start(in_flight)
    queue.mark_start(finished)
    queue.mark_done(finished, {"verdicts": ["false_positive"],
                               "digest": "d" * 64})
    queue.close()

    reopened = _queue(tmp_path)
    jobs = {job.nonce: job for job in reopened.jobs.values()}
    # In flight at the "crash": back to queued, resuming from its store.
    assert (jobs["a"].state, jobs["a"].resume) == ("queued", True)
    assert any("in flight" in note for note in reopened.recovery_notes)
    # Done is terminal: never relaunched, result preserved.
    assert jobs["b"].state == "done"
    assert jobs["b"].result["digest"] == "d" * 64
    assert (jobs["c"].state, jobs["c"].resume) == ("queued", False)
    # Nonce dedup survives the restart.
    again, accepted = reopened.submit({"benchmark": "apache"}, nonce="c")
    assert not accepted and again.index == jobs["c"].index
    reopened.close()


def test_torn_tail_is_cut_and_journal_heals_on_reopen(tmp_path):
    queue = _queue(tmp_path)
    queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.submit({"benchmark": "apache"}, nonce="b")
    queue.close()
    path = tmp_path / JOB_QUEUE_NAME
    intact = path.read_bytes()
    path.write_bytes(intact + b'{"crc": 1, "body": {"kind": "subm')

    scan = scan_job_queue(str(path))
    assert len(scan.events) == 2
    assert scan.valid_bytes == len(intact)
    assert any("torn" in note or "unparseable" in note
               for note in scan.notes)

    reopened = _queue(tmp_path)  # reopen truncates the tail...
    assert path.read_bytes() == intact
    reopened.submit({"benchmark": "make"}, nonce="c")  # ...and appends clean
    reopened.close()
    assert scan_job_queue(str(path)).notes == ()


def test_corrupt_event_cuts_journal_at_last_good_entry(tmp_path):
    queue = _queue(tmp_path)
    queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.submit({"benchmark": "apache"}, nonce="b")
    queue.close()
    path = tmp_path / JOB_QUEUE_NAME
    lines = path.read_bytes().splitlines(keepends=True)
    flipped = bytearray(lines[-1])
    flipped[len(flipped) // 2] ^= 0x01
    path.write_bytes(b"".join(lines[:-1]) + bytes(flipped))

    state = load_job_queue_state(str(tmp_path))
    assert len(state.jobs) == 1 and state.jobs[0].nonce == "a"
    assert any("CRC" in note or "unparseable" in note
               for note in state.notes)


# ----------------------------------------------------------------------
# top board (satellite: QUEUED rows)
# ----------------------------------------------------------------------


def test_top_renders_queued_jobs_from_queue_journal(tmp_path):
    from repro.obs.top import TopBoard

    queue = _queue(tmp_path)
    queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.submit({"benchmark": "mysql", "attack": "rop"}, nonce="b")
    queue.close()
    board = TopBoard(str(tmp_path))
    out = board.render()
    assert "job-000000" in out and "job-000001" in out
    assert "queue:queu" in out  # actor:state column
    assert "2 queued," in out
    # Waiting is healthy: queued rows never flag as wedged.
    assert "WEDGED" not in out


# ----------------------------------------------------------------------
# in-process daemon integration
# ----------------------------------------------------------------------


@contextlib.contextmanager
def live_daemon(store, **kwargs):
    kwargs.setdefault("poll_s", 0.02)
    kwargs.setdefault("store_fsync", "never")
    daemon = ServiceDaemon(str(store), **kwargs)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    _wait_until(lambda: os.path.exists(daemon.endpoint), 30.0,
                "daemon socket")
    try:
        yield daemon
    finally:
        daemon._draining = True
        daemon._halt_launches = True
        daemon._exit_when_idle = True
        thread.join(timeout=60.0)
        daemon.shutdown()


def _client(store, **kwargs) -> ServiceClient:
    return ServiceClient(default_endpoint(str(store)), **kwargs)


def test_daemon_results_match_oneshot_fleet(tmp_path, oneshot):
    with live_daemon(tmp_path, workers=2) as daemon:
        client = _client(tmp_path)
        assert client.ping()["pid"] == os.getpid()
        for spec in SPECS:
            response = client.submit(spec)
            assert response["ok"] and not response["deduplicated"]
        final = client.drain(wait=True, stop=True)
        assert final["quiet"]
        assert final["stats"]["done"] == len(SPECS)
        # Latency accounting exists for every completed job.
        assert final["stats"]["run_p50_s"] > 0.0
        assert daemon is not None
    _assert_parity(tmp_path, oneshot)


def test_submit_is_idempotent_over_the_socket(tmp_path):
    with live_daemon(tmp_path, workers=1, poll_s=5.0):
        client = _client(tmp_path)
        first = client.submit(SPECS[0], nonce="fixed-nonce")
        again = client.submit(SPECS[0], nonce="fixed-nonce")
        assert first["job"] == again["job"]
        assert not first["deduplicated"] and again["deduplicated"]
        assert len([e for e in _events(tmp_path)
                    if e["kind"] == "submit"]) == 1


def test_backpressure_rejects_and_drain_closes_admissions(tmp_path):
    # Stall job 0 on the worker so it occupies the single slot while the
    # bounded queue fills behind it.
    plan = FaultPlan([FaultSpec(kind=FaultKind.STALL_WORKER, role="fleet",
                                target=0, stall_s=2.0)])
    with live_daemon(tmp_path, workers=1, queue_limit=1, fault_plan=plan):
        client = _client(tmp_path)
        client.submit(SPECS[0])
        _wait_until(lambda: any(e["kind"] == "start"
                                for e in _events(tmp_path)),
                    30.0, "job 0 to start")
        client.submit(SPECS[2])  # fills the queue (depth 1 of limit 1)
        with pytest.raises(QueueFullError) as excinfo:
            client.submit(SPECS[1])
        assert excinfo.value.reason == "queue-full"
        assert (excinfo.value.queued, excinfo.value.limit) == (1, 1)
        client.drain()  # close admissions, keep serving accepted work
        # Draining: late submissions get a typed structured rejection.
        with pytest.raises(QueueFullError) as excinfo:
            ServiceClient(default_endpoint(str(tmp_path)),
                          retries=0).submit(SPECS[1])
        assert excinfo.value.reason == "draining"
        final = client.drain(wait=True, stop=True)
        assert final["stats"]["done"] == 2


def test_alarm_submission_preempts_running_clean_job(tmp_path, oneshot):
    # One worker; the clean job stalls 3s on its first launch only
    # (attempt 0), so the attack submission must preempt it to run.
    plan = FaultPlan([FaultSpec(kind=FaultKind.STALL_WORKER, role="fleet",
                                target=0, attempt=0, stall_s=3.0)])
    with live_daemon(tmp_path, workers=1, fault_plan=plan):
        client = _client(tmp_path)
        clean = client.submit(SPECS[0])
        assert clean["priority"] == PRIORITY_CR
        _wait_until(lambda: any(e["kind"] == "start"
                                for e in _events(tmp_path)),
                    30.0, "clean job to start")
        attack = client.submit(SPECS[1])
        assert attack["priority"] == PRIORITY_AR
        client.drain(wait=True, stop=True)

    events = _events(tmp_path)
    assert any(event["kind"] == "preempt" and event["job"] == "job-000000"
               for event in events), "clean job was never preempted"
    starts = [event for event in events if event["kind"] == "start"
              and event["job"] == "job-000000"]
    assert len(starts) == 2 and starts[1]["resume"] is True
    state = load_job_queue_state(str(tmp_path))
    jobs = {job.index: job for job in state.jobs}
    # The alarm-bearing job demonstrably finished first...
    assert jobs[1].finished_wall < jobs[0].finished_wall
    # ...and the preemption charged the victim no failure.
    assert jobs[0].failures == 0 and jobs[0].state == "done"
    _assert_parity(tmp_path, oneshot, indices=(0, 1))


def test_message_faults_end_to_end(tmp_path, oneshot):
    # Daemon-side message indices, in arrival order (one client, strictly
    # sequential requests): 0 ping (dropped) -> 1 ping retry -> 2 submit
    # A (duplicated) -> 3 submit B (garbled) -> 4 submit B retry.
    plan = FaultPlan([
        FaultSpec(kind=FaultKind.DROP_MESSAGE, target=0),
        FaultSpec(kind=FaultKind.DUPLICATE_MESSAGE, target=2),
        FaultSpec(kind=FaultKind.GARBLE_MESSAGE, target=3),
    ])
    with live_daemon(tmp_path, workers=2, fault_plan=plan):
        client = _client(tmp_path, timeout_s=1.0, retries=3,
                         backoff_s=0.05)
        client.ping()  # dropped once; the retry path answers
        submitted = client.submit(SPECS[0])
        assert not submitted["deduplicated"]
        retried = client.submit(SPECS[1])
        assert retried["ok"]
        client.drain(wait=True, stop=True)

    events = _events(tmp_path)
    # The duplicated submit journaled exactly once (nonce dedup) and the
    # garbled submit journaled exactly once (client retried clean).
    assert len([e for e in events if e["kind"] == "submit"]) == 2
    _assert_parity(tmp_path, oneshot, indices=(0, 1))


def test_worker_death_retries_then_quarantines_poison_job(tmp_path, oneshot):
    # Job 0's worker hard-exits on attempts 0, 1, and 2: with
    # max_resume_attempts=2 the third death quarantines it as poison.
    plan = FaultPlan([
        FaultSpec(kind=FaultKind.KILL_WORKER, role="fleet", target=0,
                  attempt=attempt) for attempt in range(3)
    ])
    with live_daemon(tmp_path, workers=1, fault_plan=plan,
                     max_resume_attempts=2, retry_backoff_s=0.01):
        client = _client(tmp_path)
        client.submit(SPECS[0])
        _wait_until(lambda: any(e["kind"] == "quarantine"
                                for e in _events(tmp_path)),
                    60.0, "poison job to quarantine")
        # The daemon survived its poison job and still serves new work.
        client.submit(SPECS[1])
        client.drain(wait=True, stop=True)

    state = load_job_queue_state(str(tmp_path))
    jobs = {job.index: job for job in state.jobs}
    assert jobs[0].state == "quarantined"
    assert jobs[0].failures == 3
    assert "died" in jobs[0].error
    _assert_parity(tmp_path, oneshot, indices=(1,))
    kinds = [event["kind"] for event in _events(tmp_path)]
    assert kinds.count("fail") == 2 and kinds.count("quarantine") == 1


def test_second_daemon_on_same_store_fails_fast(tmp_path):
    daemon = ServiceDaemon(str(tmp_path), workers=1)
    try:
        with pytest.raises(ServiceError, match="already served"):
            ServiceDaemon(str(tmp_path), workers=1)
    finally:
        daemon.shutdown()


def test_cli_queue_reads_journal_when_no_daemon(tmp_path, capsys):
    from repro.cli import main

    queue = _queue(tmp_path)
    queue.submit({"benchmark": "fileio"}, nonce="a")
    queue.submit({"benchmark": "mysql", "attack": "rop"}, nonce="b")
    queue.close()
    assert main(["queue", str(tmp_path), "--json", "--timeout", "1"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert [row["state"] for row in report["jobs"]] == ["queued", "queued"]
    assert [row["priority"] for row in report["jobs"]] == ["cr", "ar"]
    assert report["stats"]["queued"] == 2
    assert any("no daemon reachable" in note for note in report["notes"])


# ----------------------------------------------------------------------
# subprocess crash matrix (satellite: kill -9 at every state transition)
# ----------------------------------------------------------------------


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_serve(store, *extra) -> subprocess.Popen:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(store),
         "--workers", "2", "--fsync", "never", *extra],
        env=_child_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    _wait_until(lambda: os.path.exists(default_endpoint(str(store)))
                or process.poll() is not None,
                60.0, "serve daemon socket")
    assert process.poll() is None, "serve daemon died on startup"
    return process


def _resume_once(store):
    """Restart the store with ``repro serve --once`` until quiet."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "serve", str(store), "--once",
         "--workers", "2", "--poll", "0.02", "--fsync", "never"],
        env=_child_env(), capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr


def _submit_all(store) -> list[str]:
    client = _client(store)
    return [client.submit(spec)["job"] for spec in SPECS]


#: kill trigger per scenario: a predicate over the journal events that
#: must hold before SIGKILL lands.  "queued" kills inside the daemon's
#: long first poll, before any launch; "running" kills mid-execution;
#: "done" kills after the first completion with work still in flight.
_KILL_SCENARIOS = {
    "queued": (["--poll", "30"], lambda events: True),
    "running": (["--poll", "0.02"],
                lambda events: any(e["kind"] == "start" for e in events)),
    "done": (["--poll", "0.02"],
             lambda events: any(e["kind"] == "done" for e in events)),
}


@pytest.mark.parametrize("scenario", sorted(_KILL_SCENARIOS))
def test_kill9_matrix_loses_nothing_and_runs_nothing_twice(
        tmp_path, oneshot, scenario):
    serve_args, trigger = _KILL_SCENARIOS[scenario]
    daemon = _spawn_serve(tmp_path, *serve_args)
    try:
        accepted = _submit_all(tmp_path)
        assert accepted == [f"job-{index:06d}" for index in range(len(SPECS))]
        _wait_until(lambda: trigger(_events(tmp_path)), 120.0,
                    f"{scenario} kill trigger")
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    events_at_kill = _events(tmp_path)
    # Every ack'd submission was already durable at the kill.
    assert len([e for e in events_at_kill if e["kind"] == "submit"]) == \
        len(SPECS)
    if scenario == "queued":
        assert not any(e["kind"] == "start" for e in events_at_kill)

    _resume_once(tmp_path)
    # No lost accepted jobs, no double execution, bit-identical results.
    _assert_parity(tmp_path, oneshot)


def test_sigterm_finishes_in_flight_and_leaves_queue_durable(
        tmp_path, oneshot):
    daemon = _spawn_serve(tmp_path, "--poll", "0.02", "--workers", "1")
    try:
        accepted = _submit_all(tmp_path)
        _wait_until(lambda: any(e["kind"] == "start"
                                for e in _events(tmp_path)),
                    60.0, "first job to start")
        daemon.send_signal(signal.SIGTERM)
        daemon.wait(timeout=120)
        assert daemon.returncode == 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    state = load_job_queue_state(str(tmp_path))
    by_state = {job.job_id: job.state for job in state.jobs}
    assert len(by_state) == len(accepted)
    # Graceful degradation: whatever had launched finished; everything
    # else stayed durably queued — nothing was lost, nothing re-queued
    # as a failure.
    assert set(by_state.values()) <= {"done", "queued"}
    assert any(value == "done" for value in by_state.values())
    started = {event["job"] for event in _events(tmp_path)
               if event["kind"] == "start"}
    for job in state.jobs:
        assert job.state == ("done" if job.job_id in started else "queued")
        assert job.failures == 0

    _resume_once(tmp_path)
    _assert_parity(tmp_path, oneshot)


def test_accept_window_crash_never_acks_before_the_journal(
        tmp_path, oneshot):
    # The daemon hard-exits between *admitting* submission #1 and
    # journaling it — the only window where an accepted job could be
    # lost.  The contract: no ack was sent, so nothing acked was lost.
    code = (
        "import sys\n"
        "from repro.faults.plan import FaultKind, FaultPlan, FaultSpec\n"
        "from repro.service import ServiceDaemon\n"
        "plan = FaultPlan([FaultSpec(kind=FaultKind.KILL_WORKER,\n"
        "                            role='accept', target=1)])\n"
        "ServiceDaemon(sys.argv[1], workers=1, poll_s=0.05,\n"
        "              store_fsync='never', fault_plan=plan).run()\n"
    )
    process = subprocess.Popen(
        [sys.executable, "-c", code, str(tmp_path)], env=_child_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        _wait_until(lambda: os.path.exists(default_endpoint(str(tmp_path)))
                    or process.poll() is not None, 60.0, "daemon socket")
        assert process.poll() is None
        client = _client(tmp_path, timeout_s=2.0, retries=1, backoff_s=0.05)
        first = client.submit(SPECS[0])
        assert first["ok"]
        with pytest.raises(ServiceError):
            client.submit(SPECS[1])
        process.wait(timeout=30)
        assert process.returncode == 17  # the injected hard exit
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    submits = [e for e in _events(tmp_path) if e["kind"] == "submit"]
    # Exactly the acked submission is durable; the un-acked one is the
    # only casualty — and the client knows, because it got an error.
    assert [e["job"] for e in submits] == ["job-000000"]

    _resume_once(tmp_path)
    _assert_parity(tmp_path, oneshot, indices=(0,))
