"""Tests for the guest kernel: image metadata, boot, scheduling, syscalls."""

import pytest

from repro.cpu.exits import RopAlarmKind, VmExitReason
from repro.kernel import (
    DEFAULT_LAYOUT,
    KernelLayout,
    Syscall,
    TaskState,
    build_kernel,
    find_task_by_sp,
    read_task,
)
from repro.kernel.tasks import current_task
from repro.rnr.recorder import Recorder, RecorderOptions
from repro.workloads.suite import kernel_for_layout

from tests.conftest import cached_recording, small_workload


@pytest.fixture(scope="module")
def kernel():
    return kernel_for_layout(DEFAULT_LAYOUT)


class TestKernelImage:
    def test_fits_in_its_region(self, kernel):
        assert kernel.image.end <= DEFAULT_LAYOUT.kdata_base

    def test_whitelist_symbols(self, kernel):
        assert kernel.ctxsw_ret_pc != kernel.switch_sp_pc
        assert len(kernel.whitelist_targets) == 3
        # All three targets are in kernel text.
        for target in kernel.whitelist_targets:
            assert (DEFAULT_LAYOUT.kernel_code_base <= target
                    < kernel.image.end)

    def test_lifecycle_commit_points(self, kernel):
        assert kernel.function_at(kernel.task_create_pc) == "create_task"
        assert kernel.function_at(kernel.task_exit_pc) == "task_exit_current"

    def test_entry_points(self, kernel):
        for name in ("boot", "syscall_entry", "irq_entry", "fault_entry"):
            assert kernel.addr(name) == kernel.image.symbols[name]

    def test_every_syscall_has_a_handler_function(self, kernel):
        for call in Syscall:
            name = f"sys_{call.name.lower()}"
            assert name in kernel.functions, name

    def test_gadget_carriers_present(self, kernel):
        for symbol in ("__gadget_pop_r1", "kload2", "kdispatch2", "set_root"):
            assert symbol in kernel.image.symbols

    def test_function_map_is_disjoint(self, kernel):
        spans = sorted(kernel.functions.values())
        for (start_a, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_layout_variants_build(self):
        custom = KernelLayout(kernel_code_base=0x1100)
        image = build_kernel(custom)
        assert image.boot_entry >= 0x1100


class TestBootAndScheduling:
    def test_boot_reaches_workers_and_shuts_down(self):
        spec, run = cached_recording("mysql")
        assert run.stop_reason == "shutdown"
        assert run.metrics.context_switches > 0

    def test_idle_task_created_in_slot_zero(self):
        spec, run = cached_recording("mysql")
        task0 = read_task(run.machine.memory, spec.kernel.layout, 0)
        assert task0.tid == 0
        assert task0.state is not TaskState.FREE or True  # idle stays live

    def test_workers_marked_free_after_exit(self):
        spec, run = cached_recording("mysql")
        layout = spec.kernel.layout
        for tid in range(1, 4):
            task = read_task(run.machine.memory, layout, tid)
            assert task.state is TaskState.FREE

    def test_find_task_by_sp(self):
        spec, run = cached_recording("mysql")
        layout = spec.kernel.layout
        # Idle is alive; its saved/current SP lies within its region.
        idle = read_task(run.machine.memory, layout, 0)
        base, top = layout.stack_region(0)
        probe = find_task_by_sp(run.machine.memory, layout, top - 4)
        assert probe is not None
        assert probe.tid == 0

    def test_current_task_readable(self):
        spec, run = cached_recording("mysql")
        task = current_task(run.machine.memory, spec.kernel.layout)
        assert task is not None

    def test_uid_cell_unprivileged_on_benign_run(self):
        spec, run = cached_recording("mysql")
        assert run.machine.memory.read_word(spec.kernel.layout.uid_addr) == 1000

    def test_no_kernel_alarms_on_benign_filtered_run(self):
        """The headline filter claim: almost no kernel false alarms remain
        (underflow alarms are possible under apache only)."""
        for name in ("mysql", "make", "fileio", "radiosity"):
            spec, run = cached_recording(name)
            kernel_alarms = [
                alarm for alarm in run.alarms
                if alarm.pc < spec.kernel.layout.user_code_base
            ]
            assert kernel_alarms == [], (name, kernel_alarms)

    def test_spawned_children_reuse_slots(self):
        spec, run = cached_recording("make")
        # make spawns short-lived children; at shutdown all non-idle slots
        # must be free again (exit path ran and slots were recycled).
        layout = spec.kernel.layout
        states = [
            read_task(run.machine.memory, layout, tid).state
            for tid in range(1, layout.max_tasks)
        ]
        assert all(state is TaskState.FREE for state in states)


class TestSyscallBehaviour:
    def test_disk_traffic_happens(self):
        spec = small_workload("fileio", disk_read_every=2,
                              disk_write_every=2)
        run = Recorder(spec,
                       RecorderOptions(max_instructions=1_500_000)).run()
        assert run.machine.disk_dev.reads > 0
        assert run.machine.disk_dev.writes > 0

    def test_network_traffic_happens(self):
        spec, run = cached_recording("apache")
        assert run.machine.nic.packets_received > 0

    def test_setjmp_alarms_are_user_mode_mismatches(self):
        spec = small_workload("mysql", setjmp_every=2)
        run = Recorder(spec, RecorderOptions(max_instructions=2_500_000)).run()
        user_base = spec.kernel.layout.user_code_base
        user_alarms = [a for a in run.alarms if a.pc >= user_base]
        assert user_alarms, "mysql's setjmp/longjmp should raise alarms"
        assert all(a.kind is RopAlarmKind.MISMATCH for a in user_alarms)

    def test_apache_underflows_match_evicts(self):
        spec, run = cached_recording("apache")
        underflows = [a for a in run.alarms
                      if a.kind is RopAlarmKind.UNDERFLOW]
        assert underflows, "big packets should underflow the RAS"
        assert run.evicts, "and evict records must accompany them"
