"""Tests for the alarm replayer: one verdict per false-positive class."""

import pytest

from repro.cpu.exits import RopAlarmKind
from repro.replay import (
    AlarmReplayer,
    AlarmReplayOptions,
    CheckpointingOptions,
    CheckpointingReplayer,
    TrapScope,
    VerdictKind,
)
from repro.replay.verdict import BenignCause
from repro.rnr.recorder import Recorder, RecorderOptions

from tests.conftest import (
    cached_attack_recording,
    cached_recording,
    small_workload,
)


@pytest.fixture(scope="module")
def attack_pipeline():
    """Attack recording plus its CR output, shared by this module."""
    spec, chain, run = cached_attack_recording()
    cr = CheckpointingReplayer(spec, run.log, CheckpointingOptions())
    return spec, chain, run, cr.run_to_end()


class TestRopConfirmation:
    def test_hijacked_return_confirmed(self, attack_pipeline):
        spec, chain, run, cr = attack_pipeline
        hijack = next(a for a in cr.pending_alarms
                      if a.actual == chain.stack_words[0])
        checkpoint = cr.store.latest_before(hijack.icount)
        replayer = AlarmReplayer(spec, run.log, hijack,
                                 checkpoint=checkpoint, store=cr.store)
        verdict = replayer.analyze()
        assert verdict.kind is VerdictKind.ROP_CONFIRMED
        assert verdict.observed_target == chain.stack_words[0]

    def test_verdict_carries_expected_target(self, attack_pipeline):
        spec, chain, run, cr = attack_pipeline
        hijack = next(a for a in cr.pending_alarms
                      if a.actual == chain.stack_words[0])
        replayer = AlarmReplayer(spec, run.log, hijack)  # from the start
        verdict = replayer.analyze()
        assert verdict.kind is VerdictKind.ROP_CONFIRMED
        assert verdict.expected_target is not None
        assert verdict.expected_target != verdict.observed_target

    def test_scope_auto_selects_kernel_for_kernel_alarm(self, attack_pipeline):
        spec, chain, run, cr = attack_pipeline
        hijack = next(a for a in cr.pending_alarms
                      if a.actual == chain.stack_words[0])
        replayer = AlarmReplayer(spec, run.log, hijack)
        assert replayer.scope is TrapScope.KERNEL

    def test_analysis_cycles_accounted(self, attack_pipeline):
        spec, chain, run, cr = attack_pipeline
        alarm = cr.pending_alarms[0]
        checkpoint = cr.store.latest_before(alarm.icount)
        replayer = AlarmReplayer(spec, run.log, alarm,
                                 checkpoint=checkpoint, store=cr.store)
        verdict = replayer.analyze()
        assert verdict.analysis_cycles > 0


class TestFalsePositives:
    def test_setjmp_longjmp_classified_imperfect_nesting(self):
        spec = small_workload("mysql", setjmp_every=2)
        run = Recorder(spec, RecorderOptions(max_instructions=2_500_000)).run()
        user_base = spec.kernel.layout.user_code_base
        setjmp_alarms = [a for a in run.alarms if a.pc >= user_base]
        assert setjmp_alarms
        alarm = setjmp_alarms[0]
        replayer = AlarmReplayer(spec, run.log, alarm)
        assert replayer.scope is TrapScope.ALL
        verdict = replayer.analyze()
        assert verdict.kind is VerdictKind.FALSE_POSITIVE
        assert verdict.benign_cause is BenignCause.IMPERFECT_NESTING

    def test_benign_underflow_classified_deep_nesting(self):
        """Run apache *without* the evict-record filter so a benign
        underflow reaches the AR; the AR's unbounded software RAS agrees
        with the target and clears it."""
        spec, _ = cached_recording("apache")
        options = RecorderOptions(evict_records=False,
                                  max_instructions=2_500_000)
        run = Recorder(spec, options).run()
        underflows = [a for a in run.alarms
                      if a.kind is RopAlarmKind.UNDERFLOW]
        assert underflows
        verdict = AlarmReplayer(spec, run.log, underflows[0]).analyze()
        assert verdict.kind is VerdictKind.FALSE_POSITIVE
        assert verdict.benign_cause is BenignCause.DEEP_NESTING


class TestEscalation:
    def test_truncated_checkpoint_yields_inconclusive(self, attack_pipeline):
        spec, chain, run, cr = attack_pipeline
        underflow_like = [a for a in cr.pending_alarms
                          if a.kind is RopAlarmKind.UNDERFLOW]
        if not underflow_like:
            pytest.skip("no attack-induced underflow in this recording")
        alarm = underflow_like[0]
        checkpoint = cr.store.latest_before(alarm.icount)
        replayer = AlarmReplayer(spec, run.log, alarm,
                                 checkpoint=checkpoint, store=cr.store)
        verdict = replayer.analyze()
        from_start = AlarmReplayer(spec, run.log, alarm).analyze()
        # The from-start AR is authoritative; the checkpoint AR may be
        # inconclusive (truncated BackRAS) but must never contradict it
        # with a *false positive* for a real attack.
        assert from_start.kind is VerdictKind.ROP_CONFIRMED
        assert verdict.kind in (VerdictKind.ROP_CONFIRMED,
                                VerdictKind.INCONCLUSIVE)

    def test_from_start_replay_has_full_history(self, attack_pipeline):
        spec, chain, run, cr = attack_pipeline
        for alarm in cr.pending_alarms:
            verdict = AlarmReplayer(spec, run.log, alarm).analyze()
            assert verdict.kind is not VerdictKind.INCONCLUSIVE


class TestJopVerdicts:
    @pytest.fixture(scope="class")
    def jop_pipeline(self):
        from repro.attacks import build_jop_attack_program
        from repro.detectors import JopDetector

        spec = build_jop_attack_program(small_workload("make"))
        recorder = Recorder(
            spec, RecorderOptions(max_instructions=3_000_000),
        )
        JopDetector().configure(recorder)
        run = recorder.run()
        return spec, run

    def test_attack_target_confirmed(self, jop_pipeline):
        spec, run = jop_pipeline
        assert run.jop_alarms, "the planted mid-function target must alarm"
        verdict = AlarmReplayer(spec, run.log, run.jop_alarms[0]).analyze()
        assert verdict.kind is VerdictKind.ROP_CONFIRMED

    def test_uncommon_function_cleared(self, jop_pipeline):
        spec, run = jop_pipeline
        from repro.cpu.exits import RopAlarmKind
        from repro.detectors import verify_jop_target
        from repro.rnr.records import AlarmRecord

        # The benign case: an alarm whose target is a real (merely
        # uncommon) function entry passes the full-map verification.
        target = spec.kernel.functions["op_stat"][0]
        alarm = AlarmRecord(
            icount=run.jop_alarms[0].icount, kind=RopAlarmKind.JOP,
            pc=run.jop_alarms[0].pc, predicted=None, actual=target, tid=1,
        )
        verdict = verify_jop_target(spec.kernel, alarm)
        assert verdict.kind is VerdictKind.FALSE_POSITIVE
        assert verdict.benign_cause is BenignCause.UNCOMMON_FUNCTION

    def test_intra_function_target_cleared(self, jop_pipeline):
        spec, run = jop_pipeline
        from repro.cpu.exits import RopAlarmKind
        from repro.detectors import verify_jop_target
        from repro.rnr.records import AlarmRecord

        start, end = spec.kernel.functions["msg_checksum"]
        alarm = AlarmRecord(
            icount=1, kind=RopAlarmKind.JOP,
            pc=start, predicted=None, actual=start + 2, tid=1,
        )
        verdict = verify_jop_target(spec.kernel, alarm)
        assert verdict.kind is VerdictKind.FALSE_POSITIVE
