"""Differential tests: epoch-parallel CR replay == sequential CR.

The contract under test is the parallelism tentpole's equivalence
doctrine: splitting a recorded session at checkpoint boundaries and
replaying the epochs concurrently (:func:`repro.core.parallel.
replay_parallel`) must be *observably indistinguishable* from one
sequential ``period_s=None`` CR pass over the same log — same alarms,
same dismissals, same CR cycles and log positions per alarm, same
sentinel verifications, same final machine digest and CPU state, same
AR verdicts — for every worker count, both pool backends, randomized
workload soups, and under injected worker faults.  Speed is allowed to
vary; semantics are not.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parallel import replay_parallel
from repro.core.pipeline import epoch_makespan
from repro.errors import HypervisorError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.replay.checkpointing import (
    CheckpointingOptions,
    CheckpointingReplayer,
)
from repro.replay.epoch import EpochPlan, plan_epoch_boundaries
from repro.rnr.recorder import Recorder, RecorderOptions
from tests.conftest import small_workload

BUDGET = 40_000
WORKLOADS = ("apache", "fileio", "make", "mysql", "radiosity")
SEQ_OPTIONS = CheckpointingOptions(period_s=None)


def _record(name, *, budget=BUDGET, workers=4, seed=2018, sentinel=None,
            attack=False):
    """Record one scaled-down workload with an epoch plan captured."""
    spec = small_workload(name, seed=seed)
    if attack:
        from repro.attacks import deliver_rop_attack

        spec, _chain = deliver_rop_attack(spec)
    options = RecorderOptions(
        max_instructions=budget,
        sentinel_records=sentinel,
        epoch_boundaries=plan_epoch_boundaries(budget, workers),
    )
    return spec, Recorder(spec, options).run()


def _sequential(spec, log):
    """The ground truth: one sequential period_s=None CR pass."""
    replayer = CheckpointingReplayer(spec, log, options=SEQ_OPTIONS)
    result = replayer.run_to_end()
    return (result, replayer.machine.fast_digest(),
            replayer.machine.cpu.capture_state())


def _assert_equivalent(par, seq, seq_digest, seq_state):
    """Every observable of the stitched run matches the sequential CR."""
    stitched = par.checkpointing
    assert stitched.alarms_seen == seq.alarms_seen
    assert stitched.dismissed_underflows == seq.dismissed_underflows
    assert stitched.alarm_cycles == seq.alarm_cycles
    assert stitched.alarm_positions == seq.alarm_positions
    assert stitched.sentinels_verified == seq.sentinels_verified
    assert stitched.pending_alarms == seq.pending_alarms
    assert par.final_cpu_state == seq_state
    assert par.epoch_results[-1].final_digest == seq_digest
    # The epochs partition the replayed instructions exactly.
    assert sum(r.instructions for r in par.epoch_results) == \
        seq.replay.metrics.instructions


class TestWorkerCounts:
    """Parallel == sequential for every worker count the issue names."""

    def test_every_worker_count_matches_sequential(self):
        baseline_bytes = None
        for workers in range(1, 9):
            spec, recording = _record("apache", workers=workers)
            # Epoch planning must never perturb the recording itself —
            # boundary captures are zero-cost snapshots, not events.
            if baseline_bytes is None:
                baseline_bytes = recording.log.to_bytes()
            assert recording.log.to_bytes() == baseline_bytes
            seq, seq_digest, seq_state = _sequential(spec, recording.log)
            par = replay_parallel(spec, recording.log, recording.epoch_plan,
                                  max_workers=workers, backend="thread")
            assert par.workers == min(workers, par.epochs)
            _assert_equivalent(par, seq, seq_digest, seq_state)

    def test_process_backend_matches_thread_backend(self):
        spec, recording = _record("mysql", workers=4)
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        for backend in ("thread", "process"):
            par = replay_parallel(spec, recording.log, recording.epoch_plan,
                                  max_workers=4, backend=backend)
            _assert_equivalent(par, seq, seq_digest, seq_state)

    def test_no_plan_degenerates_to_inline_sequential(self):
        spec, recording = _record("fileio", workers=1)
        assert recording.epoch_plan is None or \
            recording.epoch_plan.epochs == 1
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        par = replay_parallel(spec, recording.log, None, max_workers=8)
        assert par.backend == "inline"
        assert par.epochs == 1
        _assert_equivalent(par, seq, seq_digest, seq_state)

    def test_unknown_backend_rejected(self):
        spec, recording = _record("fileio", workers=2)
        with pytest.raises(HypervisorError):
            replay_parallel(spec, recording.log, recording.epoch_plan,
                            max_workers=2, backend="fiber")


class TestSentinelsAndAlarms:
    """Divergence sentinels and AR verdicts survive the partition."""

    def test_sentinel_chain_verified_across_epochs(self):
        spec, recording = _record("apache", sentinel=12, workers=4)
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        assert seq.sentinels_verified > 0
        par = replay_parallel(spec, recording.log, recording.epoch_plan,
                              max_workers=4, backend="thread")
        _assert_equivalent(par, seq, seq_digest, seq_state)

    def test_attack_verdicts_match_sequential_resolution(self):
        from repro.core.parallel import resolve_alarms_parallel

        spec, recording = _record("apache", budget=300_000, workers=4,
                                  attack=True)
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        par = replay_parallel(spec, recording.log, recording.epoch_plan,
                              max_workers=4, backend="thread",
                              resolve_ars=True)
        _assert_equivalent(par, seq, seq_digest, seq_state)
        assert par.resolution is not None and par.resolution.verdicts
        # ARs in the parallel path seed from the epoch plan's boundary
        # checkpoints (exactly like sequential ARs seed from the CR's
        # periodic store, §4.6); the reference resolution must use the
        # same anchors to be comparable verdict-for-verdict.
        reference = resolve_alarms_parallel(spec, recording.log,
                                            seq.pending_alarms,
                                            store=recording.epoch_plan.store,
                                            backend="thread")
        assert [(v.kind, v.alarm.icount) for v in par.resolution.verdicts] \
            == [(v.kind, v.alarm.icount) for v in reference.verdicts]


class TestFaultPlans:
    """Injected worker faults never change the stitched observables."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_transient_crash_is_retried(self, backend):
        spec, recording = _record("apache", workers=4)
        assert recording.epoch_plan.epochs > 1
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        plan = FaultPlan([FaultSpec(FaultKind.CRASH_WORKER, role="cr",
                                    target=1)])
        par = replay_parallel(spec, recording.log, recording.epoch_plan,
                              max_workers=4, backend=backend,
                              fault_plan=plan)
        _assert_equivalent(par, seq, seq_digest, seq_state)

    def test_hard_kill_falls_back_to_threads(self):
        spec, recording = _record("apache", workers=4)
        assert recording.epoch_plan.epochs > 2
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        plan = FaultPlan([FaultSpec(FaultKind.KILL_WORKER, role="cr",
                                    target=2)])
        par = replay_parallel(spec, recording.log, recording.epoch_plan,
                              max_workers=4, backend="process",
                              fault_plan=plan)
        assert par.backend == "thread"
        _assert_equivalent(par, seq, seq_digest, seq_state)

    def test_persistent_crash_raises(self):
        from repro.faults.plan import InjectedWorkerCrash

        spec, recording = _record("apache", workers=4)
        specs = [FaultSpec(FaultKind.CRASH_WORKER, role="cr", target=0,
                           attempt=attempt) for attempt in range(8)]
        with pytest.raises(InjectedWorkerCrash):
            replay_parallel(spec, recording.log, recording.epoch_plan,
                            max_workers=4, backend="thread",
                            fault_plan=FaultPlan(specs))


class TestWorkloadSoup:
    """Hypothesis sweeps over randomized workload soups.

    The recorder *is* the soup generator here: the drawn seed perturbs
    task schedules, packet arrival timing, and payload contents, so each
    example records a genuinely different nondeterministic session; the
    drawn budget moves the epoch boundaries relative to interrupts,
    context switches, and alarms.
    """

    @given(
        name=st.sampled_from(WORKLOADS),
        seed=st.integers(min_value=0, max_value=2 ** 16),
        budget=st.integers(min_value=15_000, max_value=60_000),
        workers=st.integers(min_value=1, max_value=8),
    )
    @settings(deadline=None, max_examples=12)
    def test_parallel_matches_sequential(self, name, seed, budget, workers):
        spec, recording = _record(name, budget=budget, workers=workers,
                                  seed=seed)
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        par = replay_parallel(spec, recording.log, recording.epoch_plan,
                              max_workers=workers, backend="thread")
        _assert_equivalent(par, seq, seq_digest, seq_state)

    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        target=st.integers(min_value=0, max_value=3),
        kind=st.sampled_from([FaultKind.CRASH_WORKER, FaultKind.KILL_WORKER]),
    )
    @settings(deadline=None, max_examples=6)
    def test_fault_soup_matches_sequential(self, seed, target, kind):
        spec, recording = _record("apache", workers=4, seed=seed)
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        plan = FaultPlan([FaultSpec(kind, role="cr", target=target)])
        par = replay_parallel(spec, recording.log, recording.epoch_plan,
                              max_workers=4, backend="thread",
                              fault_plan=plan)
        _assert_equivalent(par, seq, seq_digest, seq_state)


class TestTelemetryMerge:
    """Per-epoch telemetry merges into one icount-ordered run snapshot."""

    def test_epoch_counters_cover_all_epochs(self):
        spec, recording = _record("apache", workers=4)
        spec = dataclasses.replace(
            spec, config=dataclasses.replace(spec.config, telemetry=True))
        par = replay_parallel(spec, recording.log, recording.epoch_plan,
                              max_workers=4, backend="thread")
        assert par.telemetry is not None
        counters = par.telemetry.metrics.counters
        assert counters["parallel.epochs_replayed"][0] == par.epochs
        spans = [span for span in par.telemetry.spans
                 if span.name == "epoch"]
        assert len(spans) == par.epochs
        # Every epoch's span is present and their icount ranges tile the
        # run (completion order may interleave; icounts identify them).
        starts = sorted(span.begin_icount for span in spans)
        assert starts == sorted(result.start_icount
                                for result in par.epoch_results)


class TestEpochPlanning:
    """Unit coverage for the planner and the LPT makespan model."""

    def test_boundaries_are_monotonic_and_interior(self):
        for workers in range(1, 9):
            boundaries = plan_epoch_boundaries(BUDGET, workers)
            assert len(boundaries) <= workers - 1 if workers > 1 else \
                boundaries == ()
            assert list(boundaries) == sorted(set(boundaries))
            assert all(0 < b < BUDGET for b in boundaries)

    def test_single_worker_plans_nothing(self):
        assert plan_epoch_boundaries(BUDGET, 1) == ()
        assert plan_epoch_boundaries(1, 8) == ()

    @given(
        durations=st.lists(st.floats(min_value=0.001, max_value=10.0),
                           min_size=1, max_size=32),
        workers=st.integers(min_value=1, max_value=8),
    )
    @settings(deadline=None, max_examples=100)
    def test_makespan_lpt_properties(self, durations, workers):
        schedule = epoch_makespan(durations, workers)
        total = sum(durations)
        # A schedule can never beat either lower bound ...
        assert schedule.makespan >= max(durations) - 1e-9
        assert schedule.makespan >= total / workers - 1e-9
        # ... nor lose to running everything on one worker.
        assert schedule.makespan <= total + 1e-9
        assert schedule.speedup <= workers + 1e-9
        scheduled = sorted(index for lane in schedule.assignments
                           for index in lane)
        assert scheduled == list(range(len(durations)))

    def test_makespan_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            epoch_makespan([1.0], 0)


class TestResumePlan:
    """Epoch plans rebuilt from a durable run store."""

    def test_resume_plan_replays_equivalently(self, tmp_path):
        from repro.core.parallel import record_and_replay_pipelined
        from repro.rnr.session import SessionManifest
        from repro.store import RunStoreWriter, recover_run

        manifest = SessionManifest(benchmark="mysql", seed=2018,
                                   attack=None, max_instructions=120_000)
        spec = manifest.build_spec()
        store = RunStoreWriter(str(tmp_path / "run"), manifest,
                               fsync="never", frame_records=4)
        record_and_replay_pipelined(
            spec, RecorderOptions(max_instructions=120_000),
            CheckpointingOptions(period_s=0.05),
            backend="thread", frame_records=4, run_store=store,
        )
        resume = recover_run(tmp_path / "run")
        assert resume.recording_complete
        plan = resume.epoch_plan(spec, workers=4)
        seq, seq_digest, seq_state = _sequential(spec, resume.log)
        par = replay_parallel(spec, resume.log, plan, max_workers=4,
                              backend="thread")
        _assert_equivalent(par, seq, seq_digest, seq_state)

    def test_persisted_checkpoints_avoid_breakpoint_pcs(self, tmp_path):
        """The CR's deferral rule: no durable checkpoint may be parked on
        a kernel interposition breakpoint (its one-shot skip arm is not
        part of ``CpuState``, so restoring there would re-run the
        handler)."""
        import json

        from repro.rnr.session import SessionManifest
        from repro.store import MANIFEST_NAME, RunStoreWriter
        from repro.core.parallel import record_and_replay_pipelined

        manifest = SessionManifest(benchmark="apache", seed=2018,
                                   attack=None, max_instructions=120_000)
        spec = manifest.build_spec()
        store = RunStoreWriter(str(tmp_path / "run"), manifest,
                               fsync="never", frame_records=4)
        record_and_replay_pipelined(
            spec, RecorderOptions(max_instructions=120_000),
            CheckpointingOptions(period_s=0.05),
            backend="thread", frame_records=4, run_store=store,
        )
        body = json.loads(
            (tmp_path / "run" / MANIFEST_NAME).read_text())["body"]
        entries = body["checkpoints"]
        assert entries, "run produced no durable checkpoints"
        kernel = spec.kernel
        forbidden = {kernel.switch_sp_pc, kernel.task_create_pc,
                     kernel.task_exit_pc}
        for entry in entries:
            assert entry["pc"] not in forbidden


class TestFrameworkIntegration:
    """cr_workers plumbing through RnRSafe and the epoch plan surface."""

    def test_rnrsafe_parallel_run_matches_sequential(self):
        from repro.core.framework import RnRSafe, RnRSafeOptions

        recorder = RecorderOptions(max_instructions=BUDGET)
        sequential = RnRSafe(small_workload("apache"), RnRSafeOptions(
            recorder=recorder, cr_workers=1,
            checkpointing=SEQ_OPTIONS)).run()
        parallel = RnRSafe(small_workload("apache"), RnRSafeOptions(
            recorder=recorder, cr_workers=4,
            checkpointing=SEQ_OPTIONS)).run()
        seq_cr = sequential.checkpointing
        par_cr = parallel.checkpointing
        assert par_cr.alarms_seen == seq_cr.alarms_seen
        assert par_cr.dismissed_underflows == seq_cr.dismissed_underflows
        assert par_cr.alarm_cycles == seq_cr.alarm_cycles
        assert par_cr.pending_alarms == seq_cr.pending_alarms

    def test_plan_round_trips_through_bytes(self):
        """A process worker rebuilds the log from bytes; the plan's seeds
        must address the rebuilt log identically."""
        from repro.rnr.log import InputLog

        spec, recording = _record("apache", workers=4)
        rebuilt = InputLog.from_bytes(recording.log.to_bytes())
        seq, seq_digest, seq_state = _sequential(spec, recording.log)
        par = replay_parallel(spec, rebuilt, recording.epoch_plan,
                              max_workers=4, backend="thread")
        _assert_equivalent(par, seq, seq_digest, seq_state)
